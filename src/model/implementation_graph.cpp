#include "model/implementation_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>
#include <unordered_set>

namespace cdcs::model {

std::string_view to_string(ImplKind kind) {
  switch (kind) {
    case ImplKind::kMatching:
      return "matching";
    case ImplKind::kSegmentation:
      return "segmentation";
    case ImplKind::kDuplication:
      return "duplication";
    case ImplKind::kCompound:
      return "compound";
    case ImplKind::kMergedShare:
      return "merged";
  }
  return "unknown";
}

ImplementationGraph::ImplementationGraph(const ConstraintGraph& constraints,
                                         const commlib::Library& library)
    : constraints_(&constraints),
      library_(&library),
      arc_impls_(constraints.num_channels()) {
  // chi: mirror every constraint vertex, preserving indices and positions.
  for (VertexId v : constraints.ports()) {
    (void)v;
    g_.add_vertex(std::nullopt);
  }
  num_computational_ = g_.num_vertices();
}

VertexId ImplementationGraph::add_comm_vertex(commlib::NodeIndex node,
                                              geom::Point2D position) {
  if (node >= library_->nodes().size()) {
    throw std::out_of_range("add_comm_vertex: library node index out of range");
  }
  return g_.add_vertex(CommVertex{node, position});
}

ArcId ImplementationGraph::add_link_arc(VertexId u, VertexId v,
                                        commlib::LinkIndex link) {
  if (link >= library_->links().size()) {
    throw std::out_of_range("add_link_arc: library link index out of range");
  }
  const double span =
      geom::distance(position(u), position(v), constraints_->norm());
  const commlib::Link& l = library_->link(link);
  if (span > l.max_span * (1.0 + 1e-9) + 1e-12) {
    throw std::invalid_argument("add_link_arc: span " + std::to_string(span) +
                                " exceeds link '" + l.name + "' max span " +
                                std::to_string(l.max_span));
  }
  return g_.add_arc(u, v, LinkArc{link, span});
}

void ImplementationGraph::register_path(ArcId constraint_arc, Path path) {
  if (constraint_arc.index() >= arc_impls_.size()) {
    throw std::out_of_range("register_path: unknown constraint arc");
  }
  if (path.arcs.empty()) {
    throw std::invalid_argument("register_path: empty path");
  }
  // Contiguity + distinct-vertex checks (Def 2.3: alternating sequence of
  // *distinct* vertices and arcs).
  std::unordered_set<std::uint32_t> seen;
  VertexId cur = arc_source(path.arcs.front());
  seen.insert(cur.value);
  for (ArcId a : path.arcs) {
    if (arc_source(a) != cur) {
      throw std::invalid_argument("register_path: path arcs not contiguous");
    }
    cur = arc_target(a);
    if (!seen.insert(cur.value).second) {
      throw std::invalid_argument("register_path: repeated vertex in path");
    }
  }
  // Def 2.4 condition 1: endpoints are chi(u), chi(v); intermediates are
  // communication vertices.
  const VertexId want_src = chi(constraints_->source(constraint_arc));
  const VertexId want_dst = chi(constraints_->target(constraint_arc));
  if (arc_source(path.arcs.front()) != want_src || cur != want_dst) {
    throw std::invalid_argument(
        "register_path: path endpoints do not match the constraint arc");
  }
  for (std::size_t i = 0; i + 1 < path.arcs.size(); ++i) {
    if (!is_communication(arc_target(path.arcs[i]))) {
      throw std::invalid_argument(
          "register_path: path passes through a computational vertex");
    }
  }
  arc_impls_[constraint_arc.index()].push_back(std::move(path));
}

geom::Point2D ImplementationGraph::position(VertexId v) const {
  if (is_computational(v)) return constraints_->position(v);
  return g_.vertex(v)->position;
}

const ImplementationGraph::CommVertex& ImplementationGraph::comm_vertex(
    VertexId v) const {
  const std::optional<CommVertex>& cv = g_.vertex(v);
  if (!cv) {
    throw std::invalid_argument("comm_vertex: vertex is computational");
  }
  return *cv;
}

double ImplementationGraph::arc_cost(ArcId a) const {
  const LinkArc& la = link_arc(a);
  return library_->link(la.link).cost(la.span);
}

double ImplementationGraph::arc_bandwidth(ArcId a) const {
  return library_->link(link_arc(a).link).bandwidth;
}

double ImplementationGraph::path_length(const Path& q) const {
  double total = 0.0;
  for (ArcId a : q.arcs) total += arc_span(a);
  return total;
}

double ImplementationGraph::path_bandwidth(const Path& q) const {
  double bw = std::numeric_limits<double>::infinity();
  for (ArcId a : q.arcs) bw = std::min(bw, arc_bandwidth(a));
  return q.arcs.empty() ? 0.0 : bw;
}

double ImplementationGraph::path_cost(const Path& q) const {
  double total = 0.0;
  for (ArcId a : q.arcs) total += arc_cost(a);
  return total;
}

const std::vector<Path>& ImplementationGraph::arc_implementation(
    ArcId constraint_arc) const {
  return arc_impls_.at(constraint_arc.index());
}

double ImplementationGraph::arc_implementation_cost(ArcId constraint_arc) const {
  // Count every distinct element of P(a) once: links, plus the communication
  // vertices the paths travel through.
  std::set<std::uint32_t> arcs_used;
  std::set<std::uint32_t> comm_used;
  for (const Path& q : arc_implementation(constraint_arc)) {
    for (ArcId a : q.arcs) {
      arcs_used.insert(a.value);
      for (VertexId v : {arc_source(a), arc_target(a)}) {
        if (is_communication(v)) comm_used.insert(v.value);
      }
    }
  }
  double total = 0.0;
  for (std::uint32_t a : arcs_used) total += arc_cost(ArcId{a});
  for (std::uint32_t v : comm_used) {
    total += library_->node(comm_vertex(VertexId{v}).node).cost;
  }
  return total;
}

double ImplementationGraph::cost() const {
  double total = 0.0;
  g_.for_each_arc([&](ArcId a) { total += arc_cost(a); });
  g_.for_each_vertex([&](VertexId v) {
    if (is_communication(v)) {
      total += library_->node(comm_vertex(v).node).cost;
    }
  });
  return total;
}

ImplKind ImplementationGraph::classify(ArcId constraint_arc) const {
  const std::vector<Path>& paths = arc_implementation(constraint_arc);
  if (paths.empty()) {
    throw std::logic_error("classify: constraint arc has no implementation");
  }
  // Merged if any implementation arc is shared with another constraint arc.
  std::unordered_set<std::uint32_t> mine;
  for (const Path& q : paths) {
    for (ArcId a : q.arcs) mine.insert(a.value);
  }
  for (std::size_t other = 0; other < arc_impls_.size(); ++other) {
    if (other == constraint_arc.index()) continue;
    for (const Path& q : arc_impls_[other]) {
      for (ArcId a : q.arcs) {
        if (mine.contains(a.value)) return ImplKind::kMergedShare;
      }
    }
  }
  if (paths.size() == 1) {
    return paths.front().arcs.size() == 1 ? ImplKind::kMatching
                                          : ImplKind::kSegmentation;
  }
  const bool all_single = std::all_of(
      paths.begin(), paths.end(),
      [](const Path& q) { return q.arcs.size() == 1; });
  return all_single ? ImplKind::kDuplication : ImplKind::kCompound;
}

std::size_t ImplementationGraph::count_nodes(commlib::NodeKind kind) const {
  std::size_t count = 0;
  g_.for_each_vertex([&](VertexId v) {
    if (is_communication(v) &&
        library_->node(comm_vertex(v).node).kind == kind) {
      ++count;
    }
  });
  return count;
}

}  // namespace cdcs::model
