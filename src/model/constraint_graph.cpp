#include "model/constraint_graph.hpp"

#include <cmath>

namespace cdcs::model {

using support::Expected;
using support::Status;

Expected<VertexId> ConstraintGraph::try_add_port(std::string name,
                                                 geom::Point2D position) {
  if (!std::isfinite(position.x) || !std::isfinite(position.y)) {
    return Status::InvalidInput("port '" + name + "' has a non-finite position (" +
                                std::to_string(position.x) + ", " +
                                std::to_string(position.y) + ")");
  }
  ++revision_;
  return g_.add_vertex(Port{std::move(name), position});
}

Expected<ArcId> ConstraintGraph::try_add_channel(VertexId u, VertexId v,
                                                 double bandwidth,
                                                 std::string name) {
  if (u.index() >= g_.num_vertices() || v.index() >= g_.num_vertices()) {
    return Status::InvalidInput("channel '" + name +
                                "' references an unknown port");
  }
  if (!std::isfinite(bandwidth) || bandwidth <= 0.0) {
    return Status::InvalidInput(
        "channel '" +
        (name.empty() ? port(u).name + "->" + port(v).name : name) +
        "' requires a finite positive bandwidth, got " +
        std::to_string(bandwidth));
  }
  if (u == v) {
    return Status::InvalidInput(
        "channel '" + name + "' is a self-loop on port '" + port(u).name +
        "'; channels are point-to-point communications");
  }
  const double d = vertex_distance(u, v);
  if (name.empty()) name = "a" + std::to_string(g_.num_arcs() + 1);
  ++revision_;
  arc_revisions_.push_back(revision_);
  return g_.add_arc(u, v, Channel{std::move(name), bandwidth, d});
}

VertexId ConstraintGraph::add_port(std::string name, geom::Point2D position) {
  return try_add_port(std::move(name), position).value();
}

ArcId ConstraintGraph::add_channel(VertexId u, VertexId v, double bandwidth,
                                   std::string name) {
  return try_add_channel(u, v, bandwidth, std::move(name)).value();
}

std::vector<ArcId> ConstraintGraph::arcs() const {
  std::vector<ArcId> ids;
  ids.reserve(g_.num_arcs());
  g_.for_each_arc([&](ArcId a) { ids.push_back(a); });
  return ids;
}

std::vector<VertexId> ConstraintGraph::ports() const {
  std::vector<VertexId> ids;
  ids.reserve(g_.num_vertices());
  g_.for_each_vertex([&](VertexId v) { ids.push_back(v); });
  return ids;
}

std::vector<ArcId> ConstraintGraph::incident_arcs(VertexId v) const {
  std::vector<ArcId> ids(g_.out_arcs(v));
  const std::vector<ArcId>& in = g_.in_arcs(v);
  ids.insert(ids.end(), in.begin(), in.end());
  return ids;
}

support::Status ConstraintGraph::set_bandwidth(ArcId a, double bandwidth) {
  if (!a.valid() || a.index() >= g_.num_arcs()) {
    return Status::InvalidInput("set_bandwidth: invalid arc id");
  }
  if (!std::isfinite(bandwidth) || bandwidth <= 0.0) {
    return Status::InvalidInput(
        "channel '" + channel(a).name +
        "' requires a finite positive bandwidth, got " +
        std::to_string(bandwidth));
  }
  g_.arc(a).payload.bandwidth = bandwidth;
  ++revision_;
  arc_revisions_[a.index()] = revision_;
  return Status::Ok();
}

support::Status ConstraintGraph::move_port(VertexId v, geom::Point2D position) {
  if (!v.valid() || v.index() >= g_.num_vertices()) {
    return Status::InvalidInput("move_port: invalid port id");
  }
  if (!std::isfinite(position.x) || !std::isfinite(position.y)) {
    return Status::InvalidInput(
        "port '" + port(v).name + "' cannot move to a non-finite position (" +
        std::to_string(position.x) + ", " + std::to_string(position.y) + ")");
  }
  g_.vertex(v).position = position;
  ++revision_;
  for (ArcId a : incident_arcs(v)) {
    g_.arc(a).payload.distance = vertex_distance(source(a), target(a));
    arc_revisions_[a.index()] = revision_;
  }
  return Status::Ok();
}

support::Expected<std::vector<ArcId>> ConstraintGraph::erase_channels(
    const std::vector<ArcId>& remove) {
  std::vector<bool> doomed(g_.num_arcs(), false);
  for (ArcId a : remove) {
    if (!a.valid() || a.index() >= g_.num_arcs()) {
      return Status::InvalidInput("erase_channels: invalid arc id");
    }
    if (doomed[a.index()]) {
      return Status::InvalidInput("erase_channels: duplicate arc id for '" +
                                  channel(a).name + "'");
    }
    doomed[a.index()] = true;
  }

  graph::Digraph<Port, Channel> rebuilt;
  g_.for_each_vertex(
      [&](VertexId v) { rebuilt.add_vertex(g_.vertex(v)); });
  std::vector<ArcId> old_to_new(g_.num_arcs());
  std::vector<std::uint64_t> stamps;
  stamps.reserve(g_.num_arcs() - remove.size());
  g_.for_each_arc([&](ArcId a) {
    if (doomed[a.index()]) {
      old_to_new[a.index()] = ArcId{};
      return;
    }
    old_to_new[a.index()] =
        rebuilt.add_arc(g_.source(a), g_.target(a), g_.arc(a).payload);
    stamps.push_back(arc_revisions_[a.index()]);
  });
  g_ = std::move(rebuilt);
  arc_revisions_ = std::move(stamps);
  ++revision_;
  return old_to_new;
}

std::vector<std::string> ConstraintGraph::validate() const {
  std::vector<std::string> problems;
  g_.for_each_arc([&](ArcId a) {
    const Channel& c = channel(a);
    if (!(c.bandwidth > 0.0) || !std::isfinite(c.bandwidth)) {
      problems.push_back("channel '" + c.name +
                         "' has non-positive or non-finite bandwidth " +
                         std::to_string(c.bandwidth));
    }
    const double geometric = vertex_distance(source(a), target(a));
    if (std::abs(geometric - c.distance) > 1e-9 * std::max(1.0, geometric)) {
      problems.push_back("channel '" + c.name +
                         "' cached distance is inconsistent with positions");
    }
  });
  return problems;
}

}  // namespace cdcs::model
