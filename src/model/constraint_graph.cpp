#include "model/constraint_graph.hpp"

#include <cmath>

namespace cdcs::model {

using support::Expected;
using support::Status;

Expected<VertexId> ConstraintGraph::try_add_port(std::string name,
                                                 geom::Point2D position) {
  if (!std::isfinite(position.x) || !std::isfinite(position.y)) {
    return Status::InvalidInput("port '" + name + "' has a non-finite position (" +
                                std::to_string(position.x) + ", " +
                                std::to_string(position.y) + ")");
  }
  return g_.add_vertex(Port{std::move(name), position});
}

Expected<ArcId> ConstraintGraph::try_add_channel(VertexId u, VertexId v,
                                                 double bandwidth,
                                                 std::string name) {
  if (u.index() >= g_.num_vertices() || v.index() >= g_.num_vertices()) {
    return Status::InvalidInput("channel '" + name +
                                "' references an unknown port");
  }
  if (!std::isfinite(bandwidth) || bandwidth <= 0.0) {
    return Status::InvalidInput(
        "channel '" +
        (name.empty() ? port(u).name + "->" + port(v).name : name) +
        "' requires a finite positive bandwidth, got " +
        std::to_string(bandwidth));
  }
  if (u == v) {
    return Status::InvalidInput(
        "channel '" + name + "' is a self-loop on port '" + port(u).name +
        "'; channels are point-to-point communications");
  }
  const double d = vertex_distance(u, v);
  if (name.empty()) name = "a" + std::to_string(g_.num_arcs() + 1);
  return g_.add_arc(u, v, Channel{std::move(name), bandwidth, d});
}

VertexId ConstraintGraph::add_port(std::string name, geom::Point2D position) {
  return try_add_port(std::move(name), position).value();
}

ArcId ConstraintGraph::add_channel(VertexId u, VertexId v, double bandwidth,
                                   std::string name) {
  return try_add_channel(u, v, bandwidth, std::move(name)).value();
}

std::vector<ArcId> ConstraintGraph::arcs() const {
  std::vector<ArcId> ids;
  ids.reserve(g_.num_arcs());
  g_.for_each_arc([&](ArcId a) { ids.push_back(a); });
  return ids;
}

std::vector<VertexId> ConstraintGraph::ports() const {
  std::vector<VertexId> ids;
  ids.reserve(g_.num_vertices());
  g_.for_each_vertex([&](VertexId v) { ids.push_back(v); });
  return ids;
}

std::vector<std::string> ConstraintGraph::validate() const {
  std::vector<std::string> problems;
  g_.for_each_arc([&](ArcId a) {
    const Channel& c = channel(a);
    if (!(c.bandwidth > 0.0) || !std::isfinite(c.bandwidth)) {
      problems.push_back("channel '" + c.name +
                         "' has non-positive or non-finite bandwidth " +
                         std::to_string(c.bandwidth));
    }
    const double geometric = vertex_distance(source(a), target(a));
    if (std::abs(geometric - c.distance) > 1e-9 * std::max(1.0, geometric)) {
      problems.push_back("channel '" + c.name +
                         "' cached distance is inconsistent with positions");
    }
  });
  return problems;
}

}  // namespace cdcs::model
