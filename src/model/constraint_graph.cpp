#include "model/constraint_graph.hpp"

#include <cmath>
#include <stdexcept>

namespace cdcs::model {

VertexId ConstraintGraph::add_port(std::string name, geom::Point2D position) {
  if (!std::isfinite(position.x) || !std::isfinite(position.y)) {
    throw std::invalid_argument("ConstraintGraph::add_port: non-finite position");
  }
  return g_.add_vertex(Port{std::move(name), position});
}

ArcId ConstraintGraph::add_channel(VertexId u, VertexId v, double bandwidth,
                                   std::string name) {
  if (bandwidth <= 0.0) {
    throw std::invalid_argument(
        "ConstraintGraph::add_channel: bandwidth must be positive");
  }
  if (u == v) {
    throw std::invalid_argument(
        "ConstraintGraph::add_channel: self-loop channels are not "
        "point-to-point communications");
  }
  const double d = vertex_distance(u, v);
  if (name.empty()) name = "a" + std::to_string(g_.num_arcs() + 1);
  return g_.add_arc(u, v, Channel{std::move(name), bandwidth, d});
}

std::vector<ArcId> ConstraintGraph::arcs() const {
  std::vector<ArcId> ids;
  ids.reserve(g_.num_arcs());
  g_.for_each_arc([&](ArcId a) { ids.push_back(a); });
  return ids;
}

std::vector<VertexId> ConstraintGraph::ports() const {
  std::vector<VertexId> ids;
  ids.reserve(g_.num_vertices());
  g_.for_each_vertex([&](VertexId v) { ids.push_back(v); });
  return ids;
}

std::vector<std::string> ConstraintGraph::validate() const {
  std::vector<std::string> problems;
  g_.for_each_arc([&](ArcId a) {
    const Channel& c = channel(a);
    if (c.bandwidth <= 0.0) {
      problems.push_back("channel '" + c.name + "' has non-positive bandwidth");
    }
    const double geometric = vertex_distance(source(a), target(a));
    if (std::abs(geometric - c.distance) > 1e-9 * std::max(1.0, geometric)) {
      problems.push_back("channel '" + c.name +
                         "' cached distance is inconsistent with positions");
    }
  });
  return problems;
}

}  // namespace cdcs::model
