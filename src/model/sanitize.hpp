// Input sanitization for the synthesis pipeline (run by synthesize() before
// any enumeration): catches defective instances -- NaN/negative bandwidths,
// non-finite positions, duplicate arc definitions, empty or inconsistent
// libraries -- at the front door with structured diagnostics, instead of
// letting them surface as deep-stack failures inside pricers or the solver.
//
// Two modes:
//   * strict (default): any defect is a kInvalidInput Status naming the
//     offending element;
//   * repair: benign defects are fixed on a copy of the graph (parallel
//     duplicate arcs merged by summing bandwidth, duplicate channel names
//     uniquified) with every action recorded in the SanitizeReport;
//     unrecoverable defects (non-finite numbers) are still rejected.
//
// Note parallel channels between the same port pair are legal inputs (the
// covering formulation treats them as independent rows); repair merges them
// only because a merged row is synthesized at equal-or-lower cost.
#pragma once

#include "commlib/library.hpp"
#include "model/constraint_graph.hpp"
#include "support/status.hpp"

namespace cdcs::model {

struct SanitizeOptions {
  /// Repair what can be repaired instead of rejecting. Unrecoverable
  /// defects are rejected either way.
  bool repair = false;
  /// With repair: merge parallel channels (same source and target port)
  /// into one channel carrying the bandwidth sum.
  bool merge_parallel_channels = true;
};

struct SanitizeReport {
  /// Human-readable description of every repair performed, in order.
  std::vector<std::string> repairs;
  bool clean() const { return repairs.empty(); }
};

/// Strict structural check of a constraint graph: finite positions, finite
/// positive bandwidths, consistent cached distances, unique channel names.
support::Status check_graph(const ConstraintGraph& cg);

/// Strict structural check of a communication library: nonempty link set,
/// finite positive link bandwidths/spans, nonnegative costs.
support::Status check_library(const commlib::Library& library);

/// check_graph + check_library; the gate synthesize() runs on entry.
support::Status check_inputs(const ConstraintGraph& cg,
                             const commlib::Library& library);

/// Sanitizes `cg` per `options`. Returns the graph to synthesize: a repaired
/// copy when repairs were performed (arc/vertex ids are renumbered!), or an
/// equivalent copy of the input when already clean. Appends one entry per
/// repair to `report` when given.
support::Expected<ConstraintGraph> sanitize(const ConstraintGraph& cg,
                                            const SanitizeOptions& options = {},
                                            SanitizeReport* report = nullptr);

}  // namespace cdcs::model
