#include "model/delta.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace cdcs::model {
namespace {

using support::Expected;
using support::Status;

/// Name -> id indexes over the CURRENT state of a graph being edited,
/// maintained incrementally across the ops of one batch.
struct NameIndex {
  std::unordered_map<std::string, VertexId> ports;
  std::unordered_map<std::string, ArcId> channels;

  explicit NameIndex(const ConstraintGraph& cg) {
    for (VertexId v : cg.ports()) ports.emplace(cg.port(v).name, v);
    for (ArcId a : cg.arcs()) channels.emplace(cg.channel(a).name, a);
  }

  void remap_channels(const std::vector<ArcId>& old_to_new) {
    for (auto it = channels.begin(); it != channels.end();) {
      const ArcId mapped = old_to_new[it->second.index()];
      if (!mapped.valid()) {
        it = channels.erase(it);
      } else {
        it->second = mapped;
        ++it;
      }
    }
  }
};

/// Applies one op; records dirtied channels by name (names survive the
/// renumbering that removals cause) and composes the arc remap.
Status apply_op(ConstraintGraph& cg, const EditOp& op, NameIndex& names,
                std::vector<std::string>& dirty_names,
                std::vector<ArcId>& remap, bool& structure_changed) {
  if (const auto* add = std::get_if<AddPortOp>(&op)) {
    if (names.ports.contains(add->port)) {
      return Status::InvalidInput("add-port: port '" + add->port +
                                  "' already exists");
    }
    Expected<VertexId> v = cg.try_add_port(add->port, add->position);
    if (!v.ok()) return std::move(v).take_status();
    names.ports.emplace(add->port, *v);
    return Status::Ok();
  }
  if (const auto* add = std::get_if<AddArcOp>(&op)) {
    if (names.channels.contains(add->channel)) {
      return Status::InvalidInput("add-arc: channel '" + add->channel +
                                  "' already exists");
    }
    const auto src = names.ports.find(add->source);
    const auto dst = names.ports.find(add->target);
    if (src == names.ports.end() || dst == names.ports.end()) {
      return Status::InvalidInput(
          "add-arc '" + add->channel + "': unknown port '" +
          (src == names.ports.end() ? add->source : add->target) + "'");
    }
    Expected<ArcId> a = cg.try_add_channel(src->second, dst->second,
                                           add->bandwidth, add->channel);
    if (!a.ok()) return std::move(a).take_status();
    names.channels.emplace(add->channel, *a);
    dirty_names.push_back(add->channel);
    structure_changed = true;
    return Status::Ok();
  }
  if (const auto* rm = std::get_if<RemoveArcOp>(&op)) {
    const auto it = names.channels.find(rm->channel);
    if (it == names.channels.end()) {
      return Status::InvalidInput("remove-arc: unknown channel '" +
                                  rm->channel + "'");
    }
    Expected<std::vector<ArcId>> old_to_new =
        cg.erase_channels({it->second});
    if (!old_to_new.ok()) return std::move(old_to_new).take_status();
    names.remap_channels(*old_to_new);
    for (ArcId& pre : remap) {
      if (pre.valid()) pre = (*old_to_new)[pre.index()];
    }
    structure_changed = true;
    return Status::Ok();
  }
  if (const auto* set = std::get_if<SetBandwidthOp>(&op)) {
    const auto it = names.channels.find(set->channel);
    if (it == names.channels.end()) {
      return Status::InvalidInput("set-bandwidth: unknown channel '" +
                                  set->channel + "'");
    }
    Status s = cg.set_bandwidth(it->second, set->bandwidth);
    if (!s.ok()) return s;
    dirty_names.push_back(set->channel);
    return Status::Ok();
  }
  const auto& move = std::get<MovePortOp>(op);
  const auto it = names.ports.find(move.port);
  if (it == names.ports.end()) {
    return Status::InvalidInput("move-port: unknown port '" + move.port + "'");
  }
  Status s = cg.move_port(it->second, move.to);
  if (!s.ok()) return s;
  for (ArcId a : cg.incident_arcs(it->second)) {
    dirty_names.push_back(cg.channel(a).name);
  }
  return Status::Ok();
}

}  // namespace

std::string_view op_kind(const EditOp& op) {
  struct Visitor {
    std::string_view operator()(const AddPortOp&) { return "add-port"; }
    std::string_view operator()(const AddArcOp&) { return "add-arc"; }
    std::string_view operator()(const RemoveArcOp&) { return "remove-arc"; }
    std::string_view operator()(const SetBandwidthOp&) {
      return "set-bandwidth";
    }
    std::string_view operator()(const MovePortOp&) { return "move-port"; }
  };
  return std::visit(Visitor{}, op);
}

support::Expected<DeltaEffect> apply_delta(ConstraintGraph& cg,
                                           const Delta& delta) {
  DeltaEffect effect;
  effect.revision_before = cg.revision();
  effect.arc_remap.resize(cg.num_channels());
  for (std::size_t i = 0; i < effect.arc_remap.size(); ++i) {
    effect.arc_remap[i] = ArcId{static_cast<std::uint32_t>(i)};
  }

  // Edit a scratch copy so a failing op leaves the caller's graph intact.
  ConstraintGraph scratch = cg;
  NameIndex names(scratch);
  std::vector<std::string> dirty_names;
  for (std::size_t i = 0; i < delta.ops.size(); ++i) {
    Status s = apply_op(scratch, delta.ops[i], names, dirty_names,
                        effect.arc_remap, effect.structure_changed);
    if (!s.ok()) {
      return std::move(s).with_context(
          "delta op " + std::to_string(i + 1) + " (" +
          std::string(op_kind(delta.ops[i])) + ")");
    }
  }

  for (const std::string& name : dirty_names) {
    const auto it = names.channels.find(name);
    if (it != names.channels.end()) effect.dirty_arcs.push_back(it->second);
  }
  std::sort(effect.dirty_arcs.begin(), effect.dirty_arcs.end());
  effect.dirty_arcs.erase(
      std::unique(effect.dirty_arcs.begin(), effect.dirty_arcs.end()),
      effect.dirty_arcs.end());

  effect.revision_after = scratch.revision();
  cg = std::move(scratch);
  return effect;
}

}  // namespace cdcs::model
