// The implementation graph G'(G, L) of Definition 2.4, together with paths
// (Def 2.3), arc implementations, their cost (Def 2.5) and their structural
// classification (Def 2.7 / 2.8).
//
// Vertices are either *computational* -- mirrors of constraint-graph vertices
// through the bijection chi, created eagerly by the constructor so that
// chi(v) has the same numeric index as v -- or *communication* vertices, each
// mapped (psi) to a library node. Arcs are mapped (phi) to library links and
// carry the concrete span they cover; an arc is legal only if its span does
// not exceed d(l) of its link.
//
// Arc implementations P(a) are stored as path lists per constraint arc.
// Paths may share implementation arcs across different constraint arcs --
// that sharing is exactly the K-way merging of Def 2.8 and is why
// C(G') <= sum_a C(P(a)) (Eq. 2): shared elements are counted once in
// Def 2.5's cost but once per arc in the per-implementation sum.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "commlib/library.hpp"
#include "model/constraint_graph.hpp"

namespace cdcs::model {

/// A path q in the implementation graph: the ordered arc sequence
/// (vertices are implied: source of first arc, then targets).
struct Path {
  std::vector<ArcId> arcs;
};

/// Structural shape of an arc implementation (Def 2.7) or of the union of
/// several (Def 2.8).
enum class ImplKind {
  kMatching,      ///< exactly one library link
  kSegmentation,  ///< one path, >= 2 links chained through repeaters
  kDuplication,   ///< >= 2 parallel single-link paths
  kCompound,      ///< one arc, several multi-link paths (seg x dup)
  kMergedShare,   ///< the implementation shares arcs with another constraint's
};

std::string_view to_string(ImplKind kind);

class ImplementationGraph {
 public:
  struct CommVertex {
    commlib::NodeIndex node;  ///< psi: which library node this instantiates
    geom::Point2D position;
  };

  struct LinkArc {
    commlib::LinkIndex link;  ///< phi: which library link this instantiates
    double span;              ///< concrete length covered by this instance
  };

  /// Mirrors every constraint vertex as a computational vertex; chi(v) is the
  /// implementation vertex with the same index() as v.
  ImplementationGraph(const ConstraintGraph& constraints,
                      const commlib::Library& library);

  const ConstraintGraph& constraints() const { return *constraints_; }
  const commlib::Library& library() const { return *library_; }

  /// chi: constraint vertex -> implementation vertex (same index).
  VertexId chi(VertexId constraint_vertex) const { return constraint_vertex; }

  bool is_computational(VertexId v) const {
    return v.index() < num_computational_;
  }
  bool is_communication(VertexId v) const { return !is_computational(v); }

  /// Adds a communication vertex mapped to library node `node` at `position`.
  VertexId add_comm_vertex(commlib::NodeIndex node, geom::Point2D position);

  /// Adds an arc u -> v mapped to library link `link`. The span is the
  /// geometric distance between the endpoints under the constraint graph's
  /// norm; throws std::invalid_argument when it exceeds the link's d(l)
  /// (beyond a tiny numeric tolerance).
  ArcId add_link_arc(VertexId u, VertexId v, commlib::LinkIndex link);

  /// Declares that `path` is one of the paths implementing `constraint_arc`.
  /// Checks Def 2.4 path-shape conditions eagerly: contiguity, endpoints
  /// chi(u)/chi(v), distinct vertices, intermediates all communication
  /// vertices.
  void register_path(ArcId constraint_arc, Path path);

  std::size_t num_vertices() const { return g_.num_vertices(); }
  std::size_t num_comm_vertices() const {
    return g_.num_vertices() - num_computational_;
  }
  std::size_t num_link_arcs() const { return g_.num_arcs(); }

  geom::Point2D position(VertexId v) const;
  const CommVertex& comm_vertex(VertexId v) const;
  const LinkArc& link_arc(ArcId a) const { return g_.arc(a).payload; }
  VertexId arc_source(ArcId a) const { return g_.source(a); }
  VertexId arc_target(ArcId a) const { return g_.target(a); }

  /// Arc properties inherited from the mapped link / concrete instance.
  double arc_cost(ArcId a) const;
  double arc_bandwidth(ArcId a) const;
  double arc_span(ArcId a) const { return link_arc(a).span; }

  /// Path properties of Def 2.3 over implementation arcs.
  double path_length(const Path& q) const;
  double path_bandwidth(const Path& q) const;  ///< min over arcs of b
  double path_cost(const Path& q) const;

  /// The arc implementation P(a) registered for a constraint arc.
  const std::vector<Path>& arc_implementation(ArcId constraint_arc) const;

  /// C(P(a)): cost of an arc implementation counting each element once per
  /// use (the per-candidate cost of Def 2.4, before sharing discounts).
  double arc_implementation_cost(ArcId constraint_arc) const;

  /// Def 2.5: total cost counting every comm vertex and link arc exactly once.
  double cost() const;

  /// Classifies P(a) per Def 2.7/2.8. kMergedShare when any of its arcs also
  /// appears in another constraint arc's implementation.
  ImplKind classify(ArcId constraint_arc) const;

  /// Number of comm vertices mapped to nodes acting as `kind` (by their
  /// library node's declared kind, not by graph degree).
  std::size_t count_nodes(commlib::NodeKind kind) const;

  const std::vector<ArcId>& out_arcs(VertexId v) const { return g_.out_arcs(v); }
  const std::vector<ArcId>& in_arcs(VertexId v) const { return g_.in_arcs(v); }

 private:
  const ConstraintGraph* constraints_;
  const commlib::Library* library_;
  std::size_t num_computational_{0};

  // Payloads: computational vertices carry no CommVertex; we store
  // optional to keep a single vertex sequence with stable ids.
  graph::Digraph<std::optional<CommVertex>, LinkArc> g_;

  // P(a) indexed by constraint-arc index.
  std::vector<std::vector<Path>> arc_impls_;
};

}  // namespace cdcs::model
