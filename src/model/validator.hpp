// Definition 2.4 validator: checks that an ImplementationGraph is a legal
// implementation of its constraint graph under a chosen capacity policy.
#pragma once

#include <string>
#include <vector>

#include "model/implementation_graph.hpp"

namespace cdcs::model {

/// How bandwidth on shared (merged) paths is accounted.
enum class CapacityPolicy {
  /// Literal Def 2.4 / Def 2.8 reading: each constraint arc individually
  /// needs sum_q b(q) >= b(a) over its own paths; sharing is free.
  kMaxPerConstraint,
  /// Physical mux semantics (and the reading under which the paper's
  /// Figure 4 optimum is optimal): the total flow crossing a link must also
  /// fit that link's bandwidth. Checked via an explicit flow assignment.
  kSharedSum,
};

struct ValidationReport {
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
};

/// Validates:
///  * every constraint arc has a nonempty arc implementation P(a);
///  * every path is contiguous, vertex-distinct, starts at chi(u), ends at
///    chi(v), and crosses only communication vertices in between;
///  * every implementation arc's span fits its link's d(l);
///  * bandwidth coverage per `policy`;
///  * every registered path's arcs exist and positions are finite.
ValidationReport validate(const ImplementationGraph& impl,
                          CapacityPolicy policy = CapacityPolicy::kSharedSum,
                          double tolerance = 1e-9);

}  // namespace cdcs::model
