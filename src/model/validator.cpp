#include "model/validator.hpp"

#include <cmath>
#include <unordered_set>

#include "sim/flow.hpp"

namespace cdcs::model {
namespace {

void check_path_shape(const ImplementationGraph& impl, ArcId ca,
                      const Path& q, std::size_t qi,
                      std::vector<std::string>& problems) {
  const ConstraintGraph& cg = impl.constraints();
  const std::string& name = cg.channel(ca).name;
  if (q.arcs.empty()) {
    problems.push_back("path " + std::to_string(qi) + " of '" + name +
                       "' is empty");
    return;
  }
  std::unordered_set<std::uint32_t> seen;
  VertexId cur = impl.arc_source(q.arcs.front());
  seen.insert(cur.value);
  bool contiguous = true;
  for (ArcId a : q.arcs) {
    if (impl.arc_source(a) != cur) {
      contiguous = false;
      break;
    }
    cur = impl.arc_target(a);
    if (!seen.insert(cur.value).second) {
      problems.push_back("path " + std::to_string(qi) + " of '" + name +
                         "' repeats a vertex");
    }
  }
  if (!contiguous) {
    problems.push_back("path " + std::to_string(qi) + " of '" + name +
                       "' is not contiguous");
    return;
  }
  if (impl.arc_source(q.arcs.front()) != impl.chi(cg.source(ca)) ||
      cur != impl.chi(cg.target(ca))) {
    problems.push_back("path " + std::to_string(qi) + " of '" + name +
                       "' does not connect chi(u) to chi(v)");
  }
  for (std::size_t i = 0; i + 1 < q.arcs.size(); ++i) {
    if (!impl.is_communication(impl.arc_target(q.arcs[i]))) {
      problems.push_back("path " + std::to_string(qi) + " of '" + name +
                         "' passes through a computational vertex");
    }
  }
}

}  // namespace

ValidationReport validate(const ImplementationGraph& impl,
                          CapacityPolicy policy, double tolerance) {
  ValidationReport report;
  const ConstraintGraph& cg = impl.constraints();
  const commlib::Library& lib = impl.library();

  // Link-arc legality (span within d(l)); add_link_arc enforces this on
  // construction, but the validator re-checks so it can certify graphs built
  // by any code path.
  for (std::size_t i = 0; i < impl.num_link_arcs(); ++i) {
    const ArcId a{static_cast<std::uint32_t>(i)};
    const auto& la = impl.link_arc(a);
    const commlib::Link& l = lib.link(la.link);
    if (la.span > l.max_span * (1.0 + 1e-9) + 1e-12) {
      report.problems.push_back(
          "link arc #" + std::to_string(i) + " ('" + l.name + "') spans " +
          std::to_string(la.span) + " over the link's max span " +
          std::to_string(l.max_span) + " (excess " +
          std::to_string(la.span - l.max_span) + ")");
    }
    const double geometric = geom::distance(impl.position(impl.arc_source(a)),
                                            impl.position(impl.arc_target(a)),
                                            cg.norm());
    if (std::abs(geometric - la.span) > 1e-6 * std::max(1.0, geometric)) {
      report.problems.push_back(
          "link arc #" + std::to_string(i) + " ('" + l.name +
          "') records span " + std::to_string(la.span) +
          " but its endpoints are " + std::to_string(geometric) +
          " apart (difference " + std::to_string(geometric - la.span) + ")");
    }
  }

  for (ArcId ca : cg.arcs()) {
    const std::vector<Path>& paths = impl.arc_implementation(ca);
    if (paths.empty()) {
      report.problems.push_back("constraint arc '" + cg.channel(ca).name +
                                "' has no implementation");
      continue;
    }
    for (std::size_t qi = 0; qi < paths.size(); ++qi) {
      check_path_shape(impl, ca, paths[qi], qi, report.problems);
    }
    if (policy == CapacityPolicy::kMaxPerConstraint) {
      double total = 0.0;
      for (const Path& q : paths) total += impl.path_bandwidth(q);
      if (total + tolerance < cg.bandwidth(ca)) {
        report.problems.push_back(
            "constraint arc '" + cg.channel(ca).name +
            "' bandwidth not covered: " + std::to_string(total) + " < " +
            std::to_string(cg.bandwidth(ca)) + " (shortfall " +
            std::to_string(cg.bandwidth(ca) - total) + ")");
      }
    }
  }

  if (policy == CapacityPolicy::kSharedSum) {
    const sim::FlowAssignment flows = sim::assign_flows(impl);
    for (std::string& p : sim::capacity_violations(impl, flows, tolerance)) {
      report.problems.push_back(std::move(p));
    }
  }
  return report;
}

}  // namespace cdcs::model
