// Geometric norms ||p(u) - p(v)|| (Sec. 2 of the paper).
//
// Definition 2.1 requires d(a) to be consistent with the vertex positions but
// leaves the distance notion application-specific: Euclidean for the WAN/LAN
// examples, Manhattan for the on-chip example. A Norm value is carried by
// every ConstraintGraph so that all derived quantities (the Delta matrix of
// Table 2, the merging-pricer objective, segmentation lengths) use the same
// metric as the arc lengths.
#pragma once

#include <string_view>

#include "geom/point.hpp"

namespace cdcs::geom {

enum class Norm {
  kEuclidean,  ///< L2: sqrt(dx^2 + dy^2) -- WAN/LAN domains.
  kManhattan,  ///< L1: |dx| + |dy|       -- on-chip wiring domain.
  kChebyshev,  ///< Linf: max(|dx|, |dy|) -- e.g. diagonal-routing fabrics.
};

/// Distance between two points under the given norm.
double distance(Point2D a, Point2D b, Norm norm);

/// Length of the displacement vector under the given norm.
double length(Point2D v, Norm norm);

std::string_view to_string(Norm norm);

/// Parses "euclidean" / "manhattan" / "chebyshev"; throws std::invalid_argument.
Norm norm_from_string(std::string_view name);

}  // namespace cdcs::geom
