// Point2D: the positions p(v) attached to constraint-graph vertices (Def 2.1).
//
// The paper leaves the embedding space abstract ("the plane or in space");
// both application examples (WAN, SoC) are planar, so the library works in
// R^2 throughout. All coordinates are in the application's length unit
// (kilometers for the WAN example, millimeters for the SoC example).
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace cdcs::geom {

struct Point2D {
  double x{0.0};
  double y{0.0};

  friend constexpr Point2D operator+(Point2D a, Point2D b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point2D operator-(Point2D a, Point2D b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point2D operator*(double s, Point2D p) {
    return {s * p.x, s * p.y};
  }
  friend constexpr Point2D operator*(Point2D p, double s) { return s * p; }
  friend constexpr Point2D operator/(Point2D p, double s) {
    return {p.x / s, p.y / s};
  }
  constexpr Point2D& operator+=(Point2D o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point2D& operator-=(Point2D o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  friend constexpr bool operator==(Point2D a, Point2D b) = default;
};

/// Linear interpolation between two points; t in [0,1] moves a -> b.
constexpr Point2D lerp(Point2D a, Point2D b, double t) {
  return {(1.0 - t) * a.x + t * b.x, (1.0 - t) * a.y + t * b.y};
}

/// Squared Euclidean norm of the displacement; cheap helper used by the
/// placement optimizers to avoid a sqrt in convergence checks.
constexpr double squared_length(Point2D p) { return p.x * p.x + p.y * p.y; }

/// True when two points coincide up to `eps` in each coordinate.
constexpr bool almost_equal(Point2D a, Point2D b, double eps = 1e-9) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return (dx < eps && dx > -eps) && (dy < eps && dy > -eps);
}

std::ostream& operator<<(std::ostream& os, Point2D p);

}  // namespace cdcs::geom
