#include "geom/steiner.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

namespace cdcs::geom {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// All-pairs shortest paths with edge recovery (Floyd-Warshall; Steiner
/// graphs here are Hanan grids of <= ~100 vertices).
struct AllPairs {
  std::vector<double> dist;          // n x n
  std::vector<std::size_t> via_edge; // edge entering j on the best i->j path
  std::size_t n{0};

  double d(std::size_t i, std::size_t j) const { return dist[i * n + j]; }
};

AllPairs all_pairs(const SteinerGraph& g) {
  AllPairs ap;
  ap.n = g.num_vertices;
  ap.dist.assign(ap.n * ap.n, kInf);
  ap.via_edge.assign(ap.n * ap.n, SIZE_MAX);
  for (std::size_t v = 0; v < ap.n; ++v) ap.dist[v * ap.n + v] = 0.0;
  for (std::size_t e = 0; e < g.edges.size(); ++e) {
    const auto& edge = g.edges[e];
    if (edge.weight < ap.dist[edge.a * ap.n + edge.b]) {
      ap.dist[edge.a * ap.n + edge.b] = edge.weight;
      ap.dist[edge.b * ap.n + edge.a] = edge.weight;
      ap.via_edge[edge.a * ap.n + edge.b] = e;
      ap.via_edge[edge.b * ap.n + edge.a] = e;
    }
  }
  for (std::size_t k = 0; k < ap.n; ++k) {
    for (std::size_t i = 0; i < ap.n; ++i) {
      const double dik = ap.dist[i * ap.n + k];
      if (dik == kInf) continue;
      for (std::size_t j = 0; j < ap.n; ++j) {
        const double alt = dik + ap.dist[k * ap.n + j];
        if (alt < ap.dist[i * ap.n + j]) {
          ap.dist[i * ap.n + j] = alt;
          ap.via_edge[i * ap.n + j] = ap.via_edge[k * ap.n + j];
        }
      }
    }
  }
  return ap;
}

/// Appends the edges of the shortest path i -> j to `out`.
void collect_path(const SteinerGraph& g, const AllPairs& ap, std::size_t i,
                  std::size_t j, std::set<std::size_t>& out) {
  while (j != i) {
    const std::size_t e = ap.via_edge[i * ap.n + j];
    if (e == SIZE_MAX) {
      throw std::runtime_error("steiner: terminals are not connected");
    }
    out.insert(e);
    j = (g.edges[e].a == j) ? g.edges[e].b : g.edges[e].a;
  }
}

}  // namespace

SteinerTree steiner_in_graph(const SteinerGraph& g,
                             const std::vector<std::size_t>& terminals) {
  const std::size_t t = terminals.size();
  if (t == 0 || t > 16) {
    throw std::invalid_argument("steiner_in_graph: need 1..16 terminals");
  }
  for (std::size_t v : terminals) {
    if (v >= g.num_vertices) {
      throw std::invalid_argument("steiner_in_graph: terminal out of range");
    }
  }
  {
    std::set<std::size_t> uniq(terminals.begin(), terminals.end());
    if (uniq.size() != t) {
      throw std::invalid_argument("steiner_in_graph: duplicate terminals");
    }
  }
  for (const auto& e : g.edges) {
    if (e.weight < 0.0) {
      throw std::invalid_argument("steiner_in_graph: negative edge weight");
    }
    if (e.a >= g.num_vertices || e.b >= g.num_vertices) {
      throw std::invalid_argument("steiner_in_graph: edge endpoint range");
    }
  }

  const AllPairs ap = all_pairs(g);
  const std::size_t n = g.num_vertices;
  SteinerTree tree;
  if (t == 1) {
    tree.cost = 0.0;
    return tree;
  }

  // Dreyfus-Wagner over terminals[0..t-2]; the last terminal is the root
  // the final tree is read off at.
  const std::size_t sets = std::size_t{1} << (t - 1);
  // dp[mask][v]; split_choice stores the submask when the value came from a
  // merge at v, walk_from the vertex u the value was walked in from.
  std::vector<std::vector<double>> dp(sets, std::vector<double>(n, kInf));
  std::vector<std::vector<std::uint32_t>> split_choice(
      sets, std::vector<std::uint32_t>(n, 0));
  std::vector<std::vector<std::size_t>> walk_from(
      sets, std::vector<std::size_t>(n, SIZE_MAX));

  for (std::size_t i = 0; i + 1 < t; ++i) {
    for (std::size_t v = 0; v < n; ++v) {
      dp[std::size_t{1} << i][v] = ap.d(terminals[i], v);
    }
  }

  std::vector<double> merged(n);
  std::vector<std::uint32_t> merged_split(n);
  for (std::size_t mask = 1; mask < sets; ++mask) {
    if ((mask & (mask - 1)) == 0) continue;  // singleton: base case done
    // Merge: best split of `mask` at every vertex.
    for (std::size_t v = 0; v < n; ++v) {
      merged[v] = kInf;
      merged_split[v] = 0;
      // Enumerate submasks containing the lowest set bit (canonical halves).
      const std::size_t low = mask & (~mask + 1);
      for (std::size_t sub = (mask - 1) & mask; sub != 0;
           sub = (sub - 1) & mask) {
        if (!(sub & low)) continue;
        const double c = dp[sub][v] + dp[mask ^ sub][v];
        if (c < merged[v]) {
          merged[v] = c;
          merged_split[v] = static_cast<std::uint32_t>(sub);
        }
      }
    }
    // Walk: propagate merged values along shortest paths.
    for (std::size_t v = 0; v < n; ++v) {
      double best = merged[v];
      std::size_t from = SIZE_MAX;  // SIZE_MAX = took the merge at v itself
      for (std::size_t u = 0; u < n; ++u) {
        const double c = merged[u] + ap.d(u, v);
        if (c < best) {
          best = c;
          from = u;
        }
      }
      dp[mask][v] = best;
      walk_from[mask][v] = from;
      split_choice[mask][v] =
          from == SIZE_MAX ? merged_split[v] : merged_split[from];
    }
  }

  const std::size_t root = terminals[t - 1];
  const std::size_t full = sets - 1;
  tree.cost = dp[full][root];
  if (tree.cost == kInf) {
    throw std::runtime_error("steiner_in_graph: terminals are not connected");
  }

  // Edge recovery.
  std::set<std::size_t> edges;
  struct Todo {
    std::size_t mask;
    std::size_t v;
  };
  std::vector<Todo> stack{{full, root}};
  while (!stack.empty()) {
    const Todo todo = stack.back();
    stack.pop_back();
    if ((todo.mask & (todo.mask - 1)) == 0) {
      // Singleton: shortest path terminal -> v.
      int idx = std::countr_zero(todo.mask);
      collect_path(g, ap, terminals[static_cast<std::size_t>(idx)], todo.v,
                   edges);
      continue;
    }
    std::size_t merge_at = todo.v;
    const std::size_t from = walk_from[todo.mask][todo.v];
    if (from != SIZE_MAX) {
      collect_path(g, ap, from, todo.v, edges);
      merge_at = from;
    }
    const std::size_t sub = split_choice[todo.mask][todo.v];
    stack.push_back({sub, merge_at});
    stack.push_back({todo.mask ^ sub, merge_at});
  }
  tree.edges.assign(edges.begin(), edges.end());
  return tree;
}

PlanarSteinerTree steiner_tree_on_hanan_grid(
    const std::vector<Point2D>& terminals, Norm norm) {
  if (terminals.empty() || terminals.size() > 10) {
    throw std::invalid_argument(
        "steiner_tree_on_hanan_grid: need 1..10 terminals");
  }
  std::vector<double> xs;
  std::vector<double> ys;
  for (const Point2D& p : terminals) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const std::size_t nx = xs.size();
  const std::size_t ny = ys.size();
  auto grid_index = [&](std::size_t ix, std::size_t iy) {
    return iy * nx + ix;
  };

  SteinerGraph g;
  g.num_vertices = nx * ny;
  std::vector<Point2D> grid_pos(g.num_vertices);
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      grid_pos[grid_index(ix, iy)] = {xs[ix], ys[iy]};
      if (ix + 1 < nx) {
        g.edges.push_back({grid_index(ix, iy), grid_index(ix + 1, iy),
                           distance({xs[ix], ys[iy]}, {xs[ix + 1], ys[iy]},
                                    norm)});
      }
      if (iy + 1 < ny) {
        g.edges.push_back({grid_index(ix, iy), grid_index(ix, iy + 1),
                           distance({xs[ix], ys[iy]}, {xs[ix], ys[iy + 1]},
                                    norm)});
      }
    }
  }

  // Map terminals to grid vertices; dedupe coincident terminals.
  std::vector<std::size_t> terminal_grid(terminals.size());
  std::vector<std::size_t> unique_terms;
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    const std::size_t ix =
        std::lower_bound(xs.begin(), xs.end(), terminals[i].x) - xs.begin();
    const std::size_t iy =
        std::lower_bound(ys.begin(), ys.end(), terminals[i].y) - ys.begin();
    terminal_grid[i] = grid_index(ix, iy);
    if (std::find(unique_terms.begin(), unique_terms.end(),
                  terminal_grid[i]) == unique_terms.end()) {
      unique_terms.push_back(terminal_grid[i]);
    }
  }

  const SteinerTree raw = steiner_in_graph(g, unique_terms);

  // Compact to the used vertex set.
  PlanarSteinerTree out;
  out.cost = raw.cost;
  std::map<std::size_t, std::size_t> remap;
  auto intern = [&](std::size_t gv) {
    const auto [it, inserted] = remap.emplace(gv, out.vertices.size());
    if (inserted) out.vertices.push_back(grid_pos[gv]);
    return it->second;
  };
  for (std::size_t gv : unique_terms) intern(gv);  // terminals first
  for (std::size_t e : raw.edges) {
    const auto& edge = g.edges[e];
    out.edges.push_back(
        {intern(edge.a), intern(edge.b), edge.weight});
  }
  out.terminal_vertex.resize(terminals.size());
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    out.terminal_vertex[i] = remap.at(terminal_grid[i]);
  }
  return out;
}

}  // namespace cdcs::geom
