#include "geom/weiszfeld.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "geom/minimize.hpp"

namespace cdcs::geom {
namespace {

/// Exact 1-D weighted median: minimizes sum_i w_i * |x - c_i|.
double weighted_median(std::vector<std::pair<double, double>> coord_weight) {
  std::sort(coord_weight.begin(), coord_weight.end());
  double total = 0.0;
  for (const auto& [c, w] : coord_weight) total += w;
  double acc = 0.0;
  for (const auto& [c, w] : coord_weight) {
    acc += w;
    if (acc >= total / 2.0) return c;
  }
  return coord_weight.empty() ? 0.0 : coord_weight.back().first;
}

Point2D manhattan_median(std::span<const Point2D> terminals,
                         std::span<const double> weights) {
  std::vector<std::pair<double, double>> xs;
  std::vector<std::pair<double, double>> ys;
  xs.reserve(terminals.size());
  ys.reserve(terminals.size());
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    xs.emplace_back(terminals[i].x, weights[i]);
    ys.emplace_back(terminals[i].y, weights[i]);
  }
  return {weighted_median(std::move(xs)), weighted_median(std::move(ys))};
}

Point2D euclidean_weiszfeld(std::span<const Point2D> terminals,
                            std::span<const double> weights,
                            const WeiszfeldOptions& options) {
  // Start from the weighted centroid.
  Point2D x{0.0, 0.0};
  double wsum = 0.0;
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    x += weights[i] * terminals[i];
    wsum += weights[i];
  }
  if (wsum <= 0.0) return {0.0, 0.0};
  x = x / wsum;

  for (int it = 0; it < options.max_iterations; ++it) {
    Point2D num{0.0, 0.0};
    double den = 0.0;
    Point2D pull{0.0, 0.0};  // net pull when x sits exactly on a terminal
    double anchor_weight = 0.0;
    for (std::size_t i = 0; i < terminals.size(); ++i) {
      const double d = distance(x, terminals[i], Norm::kEuclidean);
      if (d < 1e-12) {
        anchor_weight = weights[i];
        continue;
      }
      const double c = weights[i] / d;
      num += c * terminals[i];
      den += c;
      pull += (weights[i] / d) * (terminals[i] - x);
    }
    if (den == 0.0) break;  // all terminals coincide with x
    Point2D next = num / den;
    if (anchor_weight > 0.0) {
      // Kuhn's rule: x coincides with terminal t of weight w. t is optimal
      // iff ||pull|| <= w; otherwise step away along the pull direction.
      const double pull_len = std::hypot(pull.x, pull.y);
      if (pull_len <= anchor_weight) return x;
      const double step = (pull_len - anchor_weight) / den;
      next = x + (step / pull_len) * pull;
    }
    if (squared_length(next - x) <
        options.tolerance * options.tolerance) {
      return next;
    }
    x = next;
  }
  return x;
}

}  // namespace

double fermat_weber_cost(Point2D x, std::span<const Point2D> terminals,
                         std::span<const double> weights, Norm norm) {
  double cost = 0.0;
  for (std::size_t i = 0; i < terminals.size(); ++i) {
    cost += weights[i] * distance(x, terminals[i], norm);
  }
  return cost;
}

Point2D weighted_geometric_median(std::span<const Point2D> terminals,
                                  std::span<const double> weights, Norm norm,
                                  const WeiszfeldOptions& options) {
  if (terminals.size() != weights.size()) {
    throw std::invalid_argument(
        "weighted_geometric_median: terminals/weights size mismatch");
  }
  for (double w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument(
          "weighted_geometric_median: negative weight");
    }
  }
  if (terminals.empty()) return {0.0, 0.0};

  Point2D best;
  switch (norm) {
    case Norm::kManhattan:
      best = manhattan_median(terminals, weights);
      break;
    case Norm::kEuclidean:
      best = euclidean_weiszfeld(terminals, weights, options);
      break;
    case Norm::kChebyshev: {
      BBox box = BBox::of(terminals);
      box.inflate(1e-9);
      auto f = [&](Point2D p) {
        return fermat_weber_cost(p, terminals, weights, norm);
      };
      best = minimize_in_box(f, box).x;
      break;
    }
  }
  // The Fermat-Weber optimum is either interior (where the iteration
  // converges fast) or exactly AT a terminal, where Weiszfeld only crawls
  // toward it. Comparing against every terminal makes the anchored case
  // exact -- important for the pricer's degenerate-trunk mergings, whose
  // cost must tie (not slightly exceed) the unmerged implementation.
  double best_cost = fermat_weber_cost(best, terminals, weights, norm);
  for (const Point2D& t : terminals) {
    const double c = fermat_weber_cost(t, terminals, weights, norm);
    if (c < best_cost) {
      best_cost = c;
      best = t;
    }
  }
  return best;
}

}  // namespace cdcs::geom
