// Axis-aligned bounding box helper used by the workload generators (die /
// service-area extents) and by the placement optimizers to bound their
// search region: every optimal communication-vertex position lies inside the
// bounding box of the terminals it serves (the objective is a nonnegative
// combination of distances to terminals, each of which is non-decreasing as
// the point leaves the box along either axis, for all supported norms).
#pragma once

#include <algorithm>
#include <limits>

#include "geom/point.hpp"

namespace cdcs::geom {

struct BBox {
  double min_x{std::numeric_limits<double>::infinity()};
  double min_y{std::numeric_limits<double>::infinity()};
  double max_x{-std::numeric_limits<double>::infinity()};
  double max_y{-std::numeric_limits<double>::infinity()};

  constexpr bool empty() const { return min_x > max_x || min_y > max_y; }
  constexpr double width() const { return empty() ? 0.0 : max_x - min_x; }
  constexpr double height() const { return empty() ? 0.0 : max_y - min_y; }

  constexpr void expand(Point2D p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows the box by `margin` on every side.
  constexpr void inflate(double margin) {
    if (empty()) return;
    min_x -= margin;
    min_y -= margin;
    max_x += margin;
    max_y += margin;
  }

  constexpr bool contains(Point2D p) const {
    return !empty() && p.x >= min_x && p.x <= max_x && p.y >= min_y &&
           p.y <= max_y;
  }

  /// Nearest point of the box to `p` (identity when `p` is inside).
  constexpr Point2D clamp(Point2D p) const {
    return {std::clamp(p.x, min_x, max_x), std::clamp(p.y, min_y, max_y)};
  }

  constexpr Point2D center() const {
    return {(min_x + max_x) / 2.0, (min_y + max_y) / 2.0};
  }

  template <typename Range>
  static constexpr BBox of(const Range& points) {
    BBox box;
    for (const Point2D& p : points) box.expand(p);
    return box;
  }
};

}  // namespace cdcs::geom
