// Minimum Steiner trees for small terminal sets.
//
// Two layers:
//
//  * steiner_in_graph -- the exact Dreyfus-Wagner dynamic program over an
//    arbitrary weighted undirected graph: dp[S][v] = cheapest tree spanning
//    terminal subset S plus vertex v, built by subset splitting and
//    shortest-path relaxation. O(3^t n + 2^t n^2) with t terminals and n
//    graph vertices -- exact and fast for the t <= 8 mergings synthesis
//    prices.
//
//  * steiner_tree_on_hanan_grid -- builds the Hanan grid of the terminals
//    (all intersections of their x- and y-coordinates; by Hanan's theorem
//    it contains a rectilinear Steiner minimal tree) with edges weighted
//    under a caller-chosen norm, then runs Dreyfus-Wagner. Exact RSMT for
//    the Manhattan norm; a high-quality topology heuristic for other norms
//    (junction positions can be refined downstream).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/norm.hpp"
#include "geom/point.hpp"

namespace cdcs::geom {

/// Undirected weighted graph for Steiner queries.
struct SteinerGraph {
  struct Edge {
    std::size_t a{0};
    std::size_t b{0};
    double weight{0.0};
  };
  std::size_t num_vertices{0};
  std::vector<Edge> edges;
};

struct SteinerTree {
  double cost{0.0};
  /// Tree edges as indices into the input graph's edge list.
  std::vector<std::size_t> edges;
};

/// Exact minimum Steiner tree connecting `terminals` in `graph`.
/// Requirements: 1 <= terminals.size() <= 16, all terminals distinct and in
/// range, nonnegative edge weights, terminals mutually reachable (throws
/// std::invalid_argument / std::runtime_error otherwise).
SteinerTree steiner_in_graph(const SteinerGraph& graph,
                             const std::vector<std::size_t>& terminals);

/// A Steiner tree over points in the plane, via the Hanan grid.
struct PlanarSteinerTree {
  double cost{0.0};
  std::vector<Point2D> vertices;  ///< tree vertices (terminals + junctions)
  /// terminal_vertex[i] = index into `vertices` of the i-th input terminal
  /// (duplicate terminal positions map to the same vertex).
  std::vector<std::size_t> terminal_vertex;
  struct Edge {
    std::size_t a{0};
    std::size_t b{0};
    double length{0.0};
  };
  std::vector<Edge> edges;
};

/// Builds the Hanan grid of `terminals`, weights edges by `norm`, and
/// returns the Dreyfus-Wagner optimum. Exact for Norm::kManhattan.
/// terminals.size() must be in [1, 10] (the Hanan grid has up to 100
/// vertices).
PlanarSteinerTree steiner_tree_on_hanan_grid(
    const std::vector<Point2D>& terminals, Norm norm);

}  // namespace cdcs::geom
