// Weighted geometric-median ("Fermat-Weber") solvers.
//
// The cost of a candidate k-way merging (Sec. 3: "a simple nonlinear
// optimization problem, which computes also their costs") reduces to placing
// one or two communication vertices so that a nonnegative weighted sum of
// distances to fixed terminals is minimized. The single-point subproblem is
// the classic Fermat-Weber problem:
//
//     minimize_x  sum_i w_i * || x - t_i ||
//
// * Euclidean norm: Weiszfeld's iteration, with the standard fix-up for
//   iterates that land exactly on a terminal (Kuhn's modification).
// * Manhattan norm: the problem separates per coordinate and the exact
//   optimum is the weighted median of the terminal coordinates.
// * Chebyshev norm: solved by the derivative-free minimizer in minimize.hpp.
#pragma once

#include <span>

#include "geom/norm.hpp"
#include "geom/point.hpp"

namespace cdcs::geom {

struct WeiszfeldOptions {
  int max_iterations = 200;
  double tolerance = 1e-10;  ///< convergence threshold on iterate movement
};

/// Value of the Fermat-Weber objective at x.
double fermat_weber_cost(Point2D x, std::span<const Point2D> terminals,
                         std::span<const double> weights, Norm norm);

/// Minimizes sum_i w_i * ||x - t_i|| over x. Weights must be nonnegative and
/// `weights.size() == terminals.size()`; throws std::invalid_argument
/// otherwise. With no terminals (or all-zero weights) returns the origin.
Point2D weighted_geometric_median(std::span<const Point2D> terminals,
                                  std::span<const double> weights, Norm norm,
                                  const WeiszfeldOptions& options = {});

}  // namespace cdcs::geom
