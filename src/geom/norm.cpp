#include "geom/norm.hpp"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <string>

namespace cdcs::geom {

double length(Point2D v, Norm norm) {
  switch (norm) {
    case Norm::kEuclidean:
      return std::hypot(v.x, v.y);
    case Norm::kManhattan:
      return std::abs(v.x) + std::abs(v.y);
    case Norm::kChebyshev:
      return std::max(std::abs(v.x), std::abs(v.y));
  }
  throw std::logic_error("length: unknown norm");
}

double distance(Point2D a, Point2D b, Norm norm) {
  return length(a - b, norm);
}

std::string_view to_string(Norm norm) {
  switch (norm) {
    case Norm::kEuclidean:
      return "euclidean";
    case Norm::kManhattan:
      return "manhattan";
    case Norm::kChebyshev:
      return "chebyshev";
  }
  return "unknown";
}

Norm norm_from_string(std::string_view name) {
  if (name == "euclidean" || name == "l2") return Norm::kEuclidean;
  if (name == "manhattan" || name == "l1") return Norm::kManhattan;
  if (name == "chebyshev" || name == "linf") return Norm::kChebyshev;
  throw std::invalid_argument("norm_from_string: unknown norm '" +
                              std::string(name) + "'");
}

std::ostream& operator<<(std::ostream& os, Point2D p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace cdcs::geom
