#include "geom/minimize.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace cdcs::geom {

MinimizeResult1D golden_section(const std::function<double(double)>& f,
                                double lo, double hi, double tolerance,
                                int max_iterations) {
  if (lo > hi) std::swap(lo, hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo;
  double b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c);
  double fd = f(d);
  for (int it = 0; it < max_iterations && (b - a) > tolerance; ++it) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
  }
  const double x = (a + b) / 2.0;
  return {x, f(x)};
}

namespace {

MinimizeResult2D nelder_mead_once(const std::function<double(Point2D)>& f,
                                  Point2D start, double step,
                                  double tolerance, int max_iterations) {
  struct Vertex {
    Point2D p;
    double value;
  };
  std::array<Vertex, 3> simplex = {
      Vertex{start, f(start)},
      Vertex{start + Point2D{step, 0.0}, f(start + Point2D{step, 0.0})},
      Vertex{start + Point2D{0.0, step}, f(start + Point2D{0.0, step})},
  };
  auto by_value = [](const Vertex& a, const Vertex& b) {
    return a.value < b.value;
  };

  for (int it = 0; it < max_iterations; ++it) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    const Vertex& best = simplex[0];
    Vertex& worst = simplex[2];
    const double size = std::sqrt(std::max(
        squared_length(simplex[1].p - best.p),
        squared_length(worst.p - best.p)));
    if (size < tolerance) break;

    const Point2D centroid = (simplex[0].p + simplex[1].p) / 2.0;
    const Point2D reflected = centroid + (centroid - worst.p);
    const double fr = f(reflected);
    if (fr < best.value) {
      const Point2D expanded = centroid + 2.0 * (centroid - worst.p);
      const double fe = f(expanded);
      worst = fe < fr ? Vertex{expanded, fe} : Vertex{reflected, fr};
    } else if (fr < simplex[1].value) {
      worst = {reflected, fr};
    } else {
      const Point2D contracted = centroid + 0.5 * (worst.p - centroid);
      const double fc = f(contracted);
      if (fc < worst.value) {
        worst = {contracted, fc};
      } else {
        // Shrink toward the best vertex.
        for (int i = 1; i < 3; ++i) {
          simplex[i].p = best.p + 0.5 * (simplex[i].p - best.p);
          simplex[i].value = f(simplex[i].p);
        }
      }
    }
  }
  std::sort(simplex.begin(), simplex.end(), by_value);
  return {simplex[0].p, simplex[0].value};
}

}  // namespace

MinimizeResult2D nelder_mead(const std::function<double(Point2D)>& f,
                             Point2D start, const NelderMeadOptions& options) {
  MinimizeResult2D best = nelder_mead_once(
      f, start, options.initial_step, options.tolerance,
      options.max_iterations);
  double step = options.initial_step;
  for (int r = 0; r < options.restarts; ++r) {
    step *= 0.25;
    const MinimizeResult2D next = nelder_mead_once(
        f, best.x, std::max(step, 16 * options.tolerance), options.tolerance,
        options.max_iterations);
    if (next.value < best.value) best = next;
  }
  return best;
}

MinimizeResult2D minimize_in_box(const std::function<double(Point2D)>& f,
                                 const BBox& box, int samples,
                                 const NelderMeadOptions& options) {
  MinimizeResult2D best{box.center(), f(box.center())};
  const int n = std::max(samples, 2);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const Point2D p{
          box.min_x + box.width() * i / (n - 1),
          box.min_y + box.height() * j / (n - 1)};
      const double v = f(p);
      if (v < best.value) best = {p, v};
    }
  }
  NelderMeadOptions polish = options;
  polish.initial_step =
      std::max({box.width(), box.height(), 1.0}) / (2.0 * n);
  const MinimizeResult2D polished = nelder_mead(f, best.x, polish);
  return polished.value < best.value ? polished : best;
}

}  // namespace cdcs::geom
