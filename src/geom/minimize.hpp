// Derivative-free minimizers used by the merging pricer.
//
// These are deliberately small, dependency-free routines: the placement
// subproblems in this library are low-dimensional (1-D line searches and 2-D
// point placements over convex objectives), so a golden-section search and a
// Nelder-Mead simplex with restarts are exact enough to price candidates to
// well below library cost granularity.
#pragma once

#include <functional>

#include "geom/bbox.hpp"
#include "geom/point.hpp"

namespace cdcs::geom {

struct MinimizeResult1D {
  double x{0.0};
  double value{0.0};
};

/// Golden-section search for a unimodal f on [lo, hi].
MinimizeResult1D golden_section(const std::function<double(double)>& f,
                                double lo, double hi, double tolerance = 1e-10,
                                int max_iterations = 200);

struct MinimizeResult2D {
  Point2D x;
  double value{0.0};
};

struct NelderMeadOptions {
  double initial_step = 1.0;    ///< simplex edge length around the start point
  double tolerance = 1e-10;     ///< convergence threshold on simplex size
  int max_iterations = 500;
  int restarts = 2;             ///< re-seed simplex at the incumbent optimum
};

/// Nelder-Mead simplex minimization of f over R^2 starting at `start`.
/// For the convex distance-sum objectives used here, restarting the simplex
/// at the incumbent removes the classic premature-collapse failure mode.
MinimizeResult2D nelder_mead(const std::function<double(Point2D)>& f,
                             Point2D start, const NelderMeadOptions& options = {});

/// Minimizes f over a grid of `samples x samples` points of `box`, then
/// polishes the best sample with Nelder-Mead. Robust global-ish minimizer for
/// the small bounded placement problems (optimum lies in the terminal bbox).
MinimizeResult2D minimize_in_box(const std::function<double(Point2D)>& f,
                                 const BBox& box, int samples = 8,
                                 const NelderMeadOptions& options = {});

}  // namespace cdcs::geom
