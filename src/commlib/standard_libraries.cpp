#include "commlib/standard_libraries.hpp"

#include <limits>

namespace cdcs::commlib {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Library wan_library() {
  // Coordinates of the WAN workload are in kilometers, so the paper's
  // "$2 x meter" / "$4 x meter" figures become $2000 and $4000 per km.
  Library lib("wan-dac2002");
  lib.add_link(Link{.name = "radio",
                    .max_span = kInf,
                    .bandwidth = 11.0,  // Mbps
                    .fixed_cost = 0.0,
                    .cost_per_length = 2000.0});  // $ per km
  lib.add_link(Link{.name = "optical",
                    .max_span = kInf,
                    .bandwidth = 1000.0,  // 1 Gbps
                    .fixed_cost = 0.0,
                    .cost_per_length = 4000.0});  // $ per km
  lib.add_node(Node{.name = "junction", .kind = NodeKind::kSwitch, .cost = 0.0});
  return lib;
}

Library soc_library(double l_crit_mm) {
  Library lib("soc-0.18u");
  // A wire segment can sustain on-chip bandwidth over at most l_crit; cost is
  // charged on the repeaters only (the figure of merit in Fig. 5 is the
  // repeater count).
  lib.add_link(Link{.name = "metal-wire",
                    .max_span = l_crit_mm,
                    .bandwidth = 1.0,  // normalized: one channel per wire
                    .fixed_cost = 0.0,
                    .cost_per_length = 0.0});
  lib.add_node(
      Node{.name = "inverter", .kind = NodeKind::kRepeater, .cost = 1.0});
  lib.add_node(Node{.name = "mux", .kind = NodeKind::kMux, .cost = 1.0});
  lib.add_node(Node{.name = "demux", .kind = NodeKind::kDemux, .cost = 1.0});
  return lib;
}

Library noc_library(double l_crit_mm) {
  Library lib("noc-mesh");
  lib.add_link(Link{.name = "wire",
                    .max_span = l_crit_mm,
                    .bandwidth = 1.0,
                    .fixed_cost = 0.0,
                    .cost_per_length = 1.0});
  lib.add_link(Link{.name = "bus4",
                    .max_span = l_crit_mm,
                    .bandwidth = 4.0,
                    .fixed_cost = 0.0,
                    .cost_per_length = 2.5});
  lib.add_node(
      Node{.name = "repeater", .kind = NodeKind::kRepeater, .cost = 0.2});
  lib.add_node(Node{.name = "mux", .kind = NodeKind::kMux, .cost = 0.5});
  lib.add_node(Node{.name = "demux", .kind = NodeKind::kDemux, .cost = 0.5});
  lib.add_node(Node{.name = "switch", .kind = NodeKind::kSwitch, .cost = 1.0});
  return lib;
}

Library mcm_library() {
  Library lib("mcm-board");
  lib.add_link(Link{.name = "pcb-x8",
                    .max_span = 12.0,  // cm before the eye closes
                    .bandwidth = 8.0,  // GB/s
                    .fixed_cost = 0.6,  // connectors/vias per segment
                    .cost_per_length = 0.25});
  lib.add_link(Link{.name = "serdes",
                    .max_span = 60.0,   // board-length reach
                    .bandwidth = 32.0,  // GB/s
                    .fixed_cost = 7.0,  // PHY pair + retimer budget
                    .cost_per_length = 0.05});
  lib.add_node(
      Node{.name = "re-driver", .kind = NodeKind::kRepeater, .cost = 1.2});
  lib.add_node(Node{.name = "mux", .kind = NodeKind::kMux, .cost = 2.0});
  lib.add_node(Node{.name = "demux", .kind = NodeKind::kDemux, .cost = 2.0});
  lib.add_node(Node{.name = "switch", .kind = NodeKind::kSwitch, .cost = 3.5});
  return lib;
}

Library lan_library() {
  Library lib("lan-fiber-vs-wireless");
  // Wireless: no cabling, but per-endpoint radios, 54 Mbps, 300 m range.
  lib.add_link(Link{.name = "wireless",
                    .max_span = 300.0,   // meters
                    .bandwidth = 54.0,   // Mbps
                    .fixed_cost = 180.0,  // a pair of radios
                    .cost_per_length = 0.0});
  // Fiber: trenching dominates ($3/m) plus transceivers, 10 Gbps, any length.
  lib.add_link(Link{.name = "fiber",
                    .max_span = kInf,
                    .bandwidth = 10000.0,  // Mbps
                    .fixed_cost = 250.0,   // transceiver pair
                    .cost_per_length = 3.0});
  lib.add_node(Node{.name = "ap-repeater",
                    .kind = NodeKind::kRepeater,
                    .cost = 120.0});
  lib.add_node(Node{.name = "switch", .kind = NodeKind::kSwitch, .cost = 400.0});
  return lib;
}

}  // namespace cdcs::commlib
