// Communication links (Def 2.2).
//
// A library link l is characterized by d(l) (longest channel it can realize),
// b(l) (fastest channel it can realize), and a cost figure. The paper's two
// application domains use two different pricing shapes:
//
//   * WAN/LAN links are length-priced families: "radio (11 Mbps, l, $2 x
//     meter)" means any span is realizable at $2 per meter. Modeled with
//     max_span = infinity and cost_per_length = 2 (per the library's length
//     unit).
//   * SoC wires are fixed-length segments: one metal wire of length l_crit
//     whose "cost" in the repeater-minimization objective is carried by the
//     repeater nodes, so the wire itself is free. Modeled with max_span =
//     l_crit and both cost terms zero.
//
// The cost of instantiating a link over a concrete span s <= max_span is
//     cost(s) = fixed_cost + cost_per_length * s.
#pragma once

#include <limits>
#include <string>

namespace cdcs::commlib {

struct Link {
  std::string name;
  /// d(l): longest span one instance may cover. Infinity = length-priced family.
  double max_span{std::numeric_limits<double>::infinity()};
  /// b(l): bandwidth sustained by one instance, in the library's bandwidth unit.
  double bandwidth{0.0};
  /// Per-instance cost component (e.g. transceiver equipment).
  double fixed_cost{0.0};
  /// Cost per unit length of actually-used span.
  double cost_per_length{0.0};

  /// True when one instance can cover span `s`.
  bool spans(double s) const { return s <= max_span; }

  /// Cost of one instance cut to span `s`. Caller must ensure spans(s).
  double cost(double s) const { return fixed_cost + cost_per_length * s; }
};

}  // namespace cdcs::commlib
