// The communication library L = L (links) ∪ N (nodes) of Def 2.2.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "commlib/link.hpp"
#include "commlib/node.hpp"
#include "support/status.hpp"

namespace cdcs::commlib {

/// Index of a link within its library; stable because libraries are
/// append-only once synthesis starts.
using LinkIndex = std::size_t;
using NodeIndex = std::size_t;

class Library {
 public:
  Library() = default;
  explicit Library(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Validated element insertion: rejects (kInvalidInput) non-finite or
  /// non-positive bandwidths, non-positive spans, non-finite or negative
  /// costs, and duplicate names. The primary mutation API.
  support::Expected<LinkIndex> try_add_link(Link link);
  support::Expected<NodeIndex> try_add_node(Node node);

  /// Legacy unchecked append (kept for hand-built test fixtures that probe
  /// validate()); prefer try_add_link / try_add_node.
  LinkIndex add_link(Link link);
  NodeIndex add_node(Node node);

  const std::vector<Link>& links() const { return links_; }
  const std::vector<Node>& nodes() const { return nodes_; }

  const Link& link(LinkIndex i) const { return links_.at(i); }
  const Node& node(NodeIndex i) const { return nodes_.at(i); }

  std::optional<LinkIndex> find_link(std::string_view name) const;
  std::optional<NodeIndex> find_node(std::string_view name) const;

  /// Cheapest node able to act as `kind` (switches qualify for every kind).
  /// Empty when the library offers no such node.
  std::optional<NodeIndex> cheapest_node(NodeKind kind) const;

  /// max_{l in L} b(l): the bandwidth bound used by Theorem 3.2. Zero for an
  /// empty link set.
  double max_link_bandwidth() const;

  /// Order-sensitive 64-bit digest of every element (names, spans,
  /// bandwidths, cost terms, node kinds). Two libraries pricing any plan
  /// differently have different fingerprints, so the synthesis pricing
  /// cache (synth/pricing_cache.hpp) keys entries on it: mutating or
  /// swapping the library invalidates every cached plan automatically.
  std::uint64_t fingerprint() const;

  /// Largest finite link span, or +infinity when any link is length-priced.
  double max_link_span() const;

  /// True when every link is a pure length-priced family (unbounded span,
  /// no fixed cost). Under such a library the cost of a point-to-point plan
  /// is LINEAR in its span (node costs are span-independent constants), so
  /// the merging pricer's placement problem is an exact weighted
  /// Fermat-Weber instance solvable in closed form / by Weiszfeld instead of
  /// by derivative-free search. The paper's WAN library qualifies.
  bool linear_cost_model() const;

  /// Structural sanity: nonempty link set, positive bandwidths, nonnegative
  /// costs and spans. Returns a human-readable list of violations (empty =
  /// valid). Assumption 2.1 (cost monotonicity of optimal point-to-point
  /// implementations) is checked separately by synth::check_assumption_2_1,
  /// since it depends on the point-to-point optimizer.
  std::vector<std::string> validate() const;

 private:
  std::string name_;
  std::vector<Link> links_;
  std::vector<Node> nodes_;
};

}  // namespace cdcs::commlib
