#include "commlib/library.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

namespace cdcs::commlib {

std::string_view to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRepeater:
      return "repeater";
    case NodeKind::kMux:
      return "mux";
    case NodeKind::kDemux:
      return "demux";
    case NodeKind::kSwitch:
      return "switch";
  }
  return "unknown";
}

LinkIndex Library::add_link(Link link) {
  links_.push_back(std::move(link));
  return links_.size() - 1;
}

NodeIndex Library::add_node(Node node) {
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

support::Expected<LinkIndex> Library::try_add_link(Link link) {
  if (find_link(link.name)) {
    return support::Status::InvalidInput("duplicate link name '" + link.name +
                                         "'");
  }
  if (!std::isfinite(link.bandwidth) || link.bandwidth <= 0.0) {
    return support::Status::InvalidInput(
        "link '" + link.name + "' has invalid bandwidth " +
        std::to_string(link.bandwidth) + " (must be finite and positive)");
  }
  if (std::isnan(link.max_span) || link.max_span <= 0.0) {
    return support::Status::InvalidInput(
        "link '" + link.name + "' has invalid max span " +
        std::to_string(link.max_span) + " (must be positive or infinite)");
  }
  if (!std::isfinite(link.fixed_cost) || link.fixed_cost < 0.0 ||
      !std::isfinite(link.cost_per_length) || link.cost_per_length < 0.0) {
    return support::Status::InvalidInput(
        "link '" + link.name +
        "' has an invalid cost term (must be finite and nonnegative)");
  }
  links_.push_back(std::move(link));
  return links_.size() - 1;
}

support::Expected<NodeIndex> Library::try_add_node(Node node) {
  if (find_node(node.name)) {
    return support::Status::InvalidInput("duplicate node name '" + node.name +
                                         "'");
  }
  if (!std::isfinite(node.cost) || node.cost < 0.0) {
    return support::Status::InvalidInput(
        "node '" + node.name + "' has invalid cost " +
        std::to_string(node.cost) + " (must be finite and nonnegative)");
  }
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

std::optional<LinkIndex> Library::find_link(std::string_view name) const {
  for (LinkIndex i = 0; i < links_.size(); ++i) {
    if (links_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<NodeIndex> Library::find_node(std::string_view name) const {
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return i;
  }
  return std::nullopt;
}

std::optional<NodeIndex> Library::cheapest_node(NodeKind kind) const {
  std::optional<NodeIndex> best;
  for (NodeIndex i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].can_act_as(kind)) continue;
    if (!best || nodes_[i].cost < nodes_[*best].cost) best = i;
  }
  return best;
}

namespace {

// FNV-1a; the fingerprint is an identity key, not a security boundary.
inline void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xff;
    h *= 0x100000001b3ULL;
  }
}

inline void fnv_mix(std::uint64_t& h, double v) {
  // Normalize -0.0 so semantically equal libraries hash equal; NaN costs
  // are rejected by try_add_* and only matter for hand-built fixtures.
  fnv_mix(h, std::bit_cast<std::uint64_t>(v == 0.0 ? 0.0 : v));
}

inline void fnv_mix(std::uint64_t& h, std::string_view s) {
  fnv_mix(h, static_cast<std::uint64_t>(s.size()));
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
}

}  // namespace

std::uint64_t Library::fingerprint() const {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  fnv_mix(h, name_);
  fnv_mix(h, static_cast<std::uint64_t>(links_.size()));
  for (const Link& l : links_) {
    fnv_mix(h, l.name);
    fnv_mix(h, l.max_span);
    fnv_mix(h, l.bandwidth);
    fnv_mix(h, l.fixed_cost);
    fnv_mix(h, l.cost_per_length);
  }
  fnv_mix(h, static_cast<std::uint64_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    fnv_mix(h, n.name);
    fnv_mix(h, static_cast<std::uint64_t>(n.kind));
    fnv_mix(h, n.cost);
  }
  return h;
}

double Library::max_link_bandwidth() const {
  double best = 0.0;
  for (const Link& l : links_) best = std::max(best, l.bandwidth);
  return best;
}

bool Library::linear_cost_model() const {
  for (const Link& l : links_) {
    if (!std::isinf(l.max_span) || l.fixed_cost != 0.0) return false;
  }
  return !links_.empty();
}

double Library::max_link_span() const {
  double best = 0.0;
  for (const Link& l : links_) best = std::max(best, l.max_span);
  return best;
}

std::vector<std::string> Library::validate() const {
  std::vector<std::string> problems;
  if (links_.empty()) {
    problems.push_back("library has no links; no channel can be implemented");
  }
  for (const Link& l : links_) {
    if (!std::isfinite(l.bandwidth) || l.bandwidth <= 0.0) {
      problems.push_back("link '" + l.name +
                         "' has non-positive or non-finite bandwidth");
    }
    if (std::isnan(l.max_span) || l.max_span <= 0.0) {
      problems.push_back("link '" + l.name + "' has non-positive max span");
    }
    if (!std::isfinite(l.fixed_cost) || l.fixed_cost < 0.0 ||
        !std::isfinite(l.cost_per_length) || l.cost_per_length < 0.0) {
      problems.push_back("link '" + l.name +
                         "' has a negative or non-finite cost term");
    }
    if (std::isinf(l.max_span) && l.cost_per_length == 0.0 &&
        l.fixed_cost == 0.0) {
      problems.push_back("link '" + l.name +
                         "' is unbounded and free; Assumption 2.1 requires "
                         "positive implementation costs");
    }
  }
  for (const Node& n : nodes_) {
    if (!std::isfinite(n.cost) || n.cost < 0.0) {
      problems.push_back("node '" + n.name +
                         "' has negative or non-finite cost");
    }
  }
  return problems;
}

}  // namespace cdcs::commlib
