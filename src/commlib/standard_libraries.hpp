// The concrete communication libraries used in the paper's Section 4
// examples, plus a LAN library for the introduction's fiber-vs-wireless
// motivation. Units are documented per library; all cost figures follow the
// paper where the paper gives them.
#pragma once

#include "commlib/library.hpp"

namespace cdcs::commlib {

/// Example 1 (WAN). Length unit: meter; bandwidth unit: Mbps.
///   radio link   l_r = (11 Mbps,  any length, $2 x meter)
///   optical link l_o = (1 Gbps,   any length, $4 x meter)
/// The paper's library lists no nodes; junction points of merged structures
/// are modeled as zero-cost switches (a merging's economics in this domain
/// live entirely in link mileage).
Library wan_library();

/// Example 2 (SoC repeater insertion). Length unit: millimeter; bandwidth
/// unit: Gbps. One wire segment of length l_crit (default 0.6 mm for the
/// paper's 0.18u process) plus optimally-sized inverter (repeater), mux and
/// demux. The objective counts repeaters, so the repeater costs 1 and wires
/// are free; mux/demux get the same unit cost (any stateless buffer counts).
Library soc_library(double l_crit_mm = 0.6);

/// NoC-style on-chip library (for the workloads::noc_mesh experiments).
/// Length unit: millimeter; bandwidth unit: one link-wire's capacity.
///   wire  -- a single routing track, l_crit-limited, cost ~ track length;
///   bus4  -- a 4-wire shielded bundle: 4x the bandwidth at 2.5x the track
///            cost per mm (the economy of scale that makes on-chip channel
///            merging worthwhile, unlike the single-wire Fig. 5 library);
///   repeater / mux / demux / switch with area costs.
Library noc_library(double l_crit_mm = 0.6);

/// Board-level library (for workloads::mcm_board). Length unit: centimeter;
/// bandwidth unit: GB/s.
///   pcb-x8   -- an 8-lane parallel PCB trace bundle: 8 GB/s, 12 cm reach
///               before a re-driver, cheap per cm;
///   serdes   -- a retimed serial link: 32 GB/s, board-length reach, pricey
///               PHY pair per instance;
///   re-driver / mux / demux / switch with part costs.
Library mcm_library();

/// Intro example: a LAN built from fiber-optic and wireless point-to-point
/// links. Length unit: meter; bandwidth unit: Mbps. Wireless is cheap per
/// meter but slow and range-limited; fiber is fast and unbounded but needs
/// trenching (higher per-meter cost) plus per-endpoint equipment.
Library lan_library();

}  // namespace cdcs::commlib
