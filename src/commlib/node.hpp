// Communication nodes (Def 2.2): repeaters, switches, muxes, demuxes.
//
// Nodes are the "active" library elements: a repeater joins two links in
// series (arc segmentation), a mux/demux pair fans parallel links in/out
// (arc duplication), and a switch is the general junction used where merged
// trunks meet per-arc spurs (arc merging). Each node type has a single cost
// c(n); node instances in an implementation graph map onto these via the
// surjection psi of Def 2.4.
#pragma once

#include <string>
#include <string_view>

namespace cdcs::commlib {

enum class NodeKind {
  kRepeater,  ///< receives and re-transmits the same data (2 ports)
  kMux,       ///< merges multiple incoming links into one outgoing link
  kDemux,     ///< splits one incoming link into multiple outgoing links
  kSwitch,    ///< general router; can act as any of the above
};

std::string_view to_string(NodeKind kind);

struct Node {
  std::string name;
  NodeKind kind{NodeKind::kRepeater};
  double cost{0.0};

  /// True when this node type can serve in the role `needed`. A switch can
  /// stand in for any role (Sec. 2: "a switch, while being able to act as a
  /// repeater, enables the connection of multiple links").
  bool can_act_as(NodeKind needed) const {
    return kind == needed || kind == NodeKind::kSwitch;
  }
};

}  // namespace cdcs::commlib
