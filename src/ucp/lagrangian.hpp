// Subgradient Lagrangian relaxation for weighted unate covering.
//
// Relaxing the row-covering constraints of
//
//     min  sum_j w_j x_j   s.t.  sum_{j : r in rows(j)} x_j >= 1  (r in U)
//
// with multipliers lambda >= 0 gives the dual function
//
//     L(lambda) = sum_{r in U} lambda_r
//               + sum_{j in A} min(0, w_j - sum_{r in rows(j) & U} lambda_r)
//
// which is a valid lower bound on the optimal cover cost of the subproblem
// (uncovered rows U, available columns A) for EVERY lambda >= 0. The inner
// minimization is trivial (take column j exactly when its reduced cost
// rc_j = w_j - sum lambda is negative), so evaluating L is one pass over the
// available columns; maximizing over lambda is done by standard projected
// subgradient ascent with the Held--Karp step rule, in the spirit of the
// Caprara--Fischetti--Toth Lagrangian heuristic for set covering.
//
// Two structural guarantees the branch-and-bound relies on:
//   * Seeded from `mis_multipliers`, L(lambda_0) equals the greedy
//     maximal-independent-rows (MIS) bound exactly -- independent rows share
//     no available column, so every reduced cost stays nonnegative and L
//     collapses to the sum of the seeds. Since the ascent reports the best
//     iterate, the Lagrangian bound therefore DOMINATES the MIS bound.
//   * The reduced costs at the best iterate support exact column fixing:
//     any cover using column j costs at least L(lambda) + max(0, rc_j), so
//     when that exceeds the incumbent strictly, j can be discarded without
//     losing ANY optimal cover (ucp/bnb.cpp).
#pragma once

#include <vector>

#include "ucp/cover.hpp"

namespace cdcs::ucp {

struct SubgradientOptions {
  std::size_t max_iterations = 100;
  /// Held--Karp step: t = scale * (upper_bound - L) / ||g||^2.
  double initial_step_scale = 2.0;
  /// Multiply the scale by this after `stall_limit` non-improving iterations.
  double step_decay = 0.5;
  std::size_t stall_limit = 8;
  /// Stop once the scale decays below this.
  double min_step_scale = 1e-3;
};

/// Outcome of one subgradient ascent on a covering subproblem.
struct LagrangianBound {
  /// Best L(lambda) seen: a valid lower bound on the subproblem optimum.
  double bound{0.0};
  /// The multipliers attaining `bound` (indexed by row; zero on rows outside
  /// the subproblem). Warm-start material for child nodes.
  std::vector<double> multipliers;
  /// Reduced cost w_j - sum_{r in rows(j) & uncovered} lambda_r at the best
  /// lambda, indexed by column; zero for unavailable columns. Pairs with
  /// `bound` for reduced-cost fixing.
  std::vector<double> reduced_costs;
  std::size_t iterations{0};
};

/// Multipliers reproducing the greedy independent-rows bound: for each row
/// picked by the MIS greedy (scanning `uncovered` ascending, blocking the
/// available columns of picked rows), lambda_r = cheapest available covering
/// weight; zero elsewhere. L(lambda) == the MIS bound exactly.
std::vector<double> mis_multipliers(const CoverProblem& problem,
                                    const Bitset& uncovered,
                                    const Bitset& available);

/// Maximizes L(lambda) over the subproblem (uncovered, available) by
/// projected subgradient ascent. `upper_bound` is the incumbent cost of the
/// SUBPROBLEM (global incumbent minus the cost already committed on the
/// path); it sizes the steps and allows early exit once L proves the
/// incumbent unbeatable. Starts from `warm_start` multipliers when given
/// (clamped to >= 0, restricted to uncovered rows), else from
/// mis_multipliers -- so the returned bound is always >= the MIS bound when
/// no warm start is supplied, and >= max(L(warm_start), 0) otherwise.
LagrangianBound subgradient_bound(const CoverProblem& problem,
                                  const Bitset& uncovered,
                                  const Bitset& available,
                                  double upper_bound,
                                  const SubgradientOptions& options = {},
                                  const std::vector<double>* warm_start = nullptr);

/// Root lower bound on the full problem: max(independent-rows bound,
/// subgradient bound seeded from it), using a greedy cover as the upper
/// bound. This is what degraded (deadline/budget) runs report as
/// CoverSolution::lower_bound so callers get an honest optimality gap.
double lagrangian_root_bound(const CoverProblem& problem,
                             const SubgradientOptions& options = {});

}  // namespace cdcs::ucp
