// Weighted Unate Covering Problem (Sec. 3, step 2).
//
// The covering matrix associates a row to each constraint arc and a column to
// each candidate arc implementation; entry (i, j) is 1 when candidate j
// implements arc i, and each column carries the candidate's cost as weight.
// The global optimum of Problem 2.1 is the minimum-weight set of columns
// covering all rows. This module holds the problem representation; solvers
// live in greedy.hpp (fast upper bound) and bnb.hpp (exact branch-and-bound
// in the spirit of the paper's references [4] Goldberg et al. and [8]
// Liao--Devadas, reimplemented from scratch).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ucp/bitset.hpp"

namespace cdcs::ucp {

struct Column {
  Bitset rows;    ///< rows covered by this column
  double weight;  ///< candidate cost (must be >= 0)
};

class CoverProblem {
 public:
  explicit CoverProblem(std::size_t num_rows) : num_rows_(num_rows) {}

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Adds a column covering `rows` (row indices) with the given weight;
  /// returns its index.
  std::size_t add_column(const std::vector<std::size_t>& rows, double weight);

  const Column& column(std::size_t j) const { return columns_.at(j); }
  const std::vector<Column>& columns() const { return columns_; }

  /// True when every row is covered by at least one column (otherwise no
  /// solution exists).
  bool feasible() const;

  /// Total weight of a column selection.
  double cost_of(const std::vector<std::size_t>& chosen) const;

  /// True when `chosen` covers every row.
  bool covers_all(const std::vector<std::size_t>& chosen) const;

  /// The transpose view: the columns covering row `r`, as a bitset over
  /// column indices. This is what turns the solver's essential-column
  /// detection and row-dominance tests into word-parallel operations
  /// (ucp/bnb.cpp). Built lazily on the first call after the last
  /// add_column and cached; the cache rebuild is O(rows x cols / 64).
  /// NOT safe to call concurrently with add_column or a first post-mutation
  /// call from another thread; the solvers are single-threaded over one
  /// problem, which is the supported usage.
  const Bitset& row_cover(std::size_t r) const;

 private:
  std::size_t num_rows_;
  std::vector<Column> columns_;
  /// Lazy transpose cache for row_cover(); invalidated by add_column.
  mutable std::vector<Bitset> row_cover_;
  mutable bool row_cover_valid_{false};
};

/// Why the solver stopped. Anything other than kCompleted means the
/// returned cover is the best incumbent, not a proven optimum, and tells
/// the caller WHICH budget to raise (node budget vs frontier cap vs
/// deadline) -- they were previously indistinguishable.
enum class CoverStop {
  kCompleted,    ///< search finished; `optimal` is the proof
  kNodeBudget,   ///< BnbOptions::max_nodes exhausted
  kFrontierCap,  ///< best-first frontier hit best_first_max_frontier
  kDeadline,     ///< wall-clock deadline expired (deadline_expired mirrors)
  kAborted,      ///< injected fault ("ucp.frontier") killed the solve
};

/// Stable lowercase name for reports, flight-recorder events, and
/// postmortems ("completed", "node_budget", "frontier_cap", "deadline",
/// "aborted").
std::string_view to_string(CoverStop stop);

/// What happened to one backend in a portfolio race (ucp/cover_solver.hpp).
enum class BackendOutcome {
  kWon,        ///< its solution is the one the portfolio returned
  kLost,       ///< proved the same optimum, but a higher-priority backend won
  kCancelled,  ///< stopped by cross-cancellation (or never started) after a
               ///< higher-priority backend proved optimality
  kDegraded,   ///< ran to its own budget without proving optimality
};

/// One backend's contribution to a portfolio race, in fixed priority order.
struct PortfolioMember {
  std::string backend;
  BackendOutcome outcome{BackendOutcome::kCancelled};
  double cost{0.0};
  double lower_bound{0.0};
  std::size_t nodes_explored{0};
  bool optimal{false};
  CoverStop stop{CoverStop::kCompleted};
};

struct CoverSolution {
  std::vector<std::size_t> chosen;  ///< column indices, ascending
  double cost{0.0};
  bool optimal{false};   ///< proven optimal (bnb completed within node budget)
  std::size_t nodes_explored{0};
  /// Proven lower bound on the optimal cost: equals `cost` when `optimal`,
  /// otherwise the strongest root bound the solver established -- the
  /// subgradient Lagrangian root bound when enabled (ucp/lagrangian.hpp),
  /// falling back to the independent-rows bound. Lets callers report an
  /// honest optimality gap for incumbents returned under a budget.
  double lower_bound{0.0};
  /// True when the solver stopped because its wall-clock deadline expired
  /// (as opposed to completing or exhausting the node budget).
  bool deadline_expired{false};
  /// Why the search stopped (kCompleted unless a budget cut it short).
  CoverStop stop{CoverStop::kCompleted};
  /// Order-independent hash of the explored-node set, filled by the kRounds
  /// parallel engine (0 elsewhere). The ParallelBnbDeterminism tests pin it
  /// bit-identical across 1/2/8 worker threads.
  std::uint64_t explored_fingerprint{0};
  /// The Lagrangian multipliers the root subgradient ascent converged to
  /// (one per row), when the solver ran it (branch-and-bound path with
  /// use_lagrangian_bound; empty on the dense-DP path or when disabled).
  /// Feed back as BnbOptions::warm_multipliers to warm-start a re-solve of
  /// a near-identical problem.
  std::vector<double> root_multipliers;
  /// Registry name of the backend that produced this solution
  /// (ucp/cover_solver.hpp): the explicitly selected one, the fixed-priority
  /// portfolio winner, or the name solve_exact's automatic dispatch mapped
  /// the legacy options onto ("dense_dp", "dfs_v1", "bnb_v2",
  /// "parallel_bnb").
  std::string backend;
  /// Per-backend outcomes of a portfolio race, in fixed priority order.
  /// Empty for single-backend solves.
  std::vector<PortfolioMember> portfolio;
  /// Instance features, stamped by solve_exact on every solve so downstream
  /// consumers (reports, BENCH_pr.json) can train backend-selection
  /// heuristics on rows x cols x density without re-deriving them.
  std::size_t rows{0};
  std::size_t cols{0};
  double density{0.0};
};

/// Honest relative optimality gap (achieved - lower_bound) / lower_bound:
/// 0 when the bound is degenerate (<= 0) or already met. The single gap
/// definition shared by the pipeline's degradation report, io/report, the
/// partitioned synthesizer's stitched bound, and the scaling benches.
double optimality_gap(double achieved, double lower_bound);

/// Root lower bound on the optimal cover cost: greedily collects rows that
/// pairwise share no column (each needs a distinct column, so the sum of
/// their cheapest covers is a valid bound). 0 for an empty row set; also a
/// valid (vacuous) bound when some row is uncoverable.
double independent_rows_lower_bound(const CoverProblem& problem);

}  // namespace cdcs::ucp
