// Pluggable cover-solver backends and the deterministic race portfolio.
//
// The UCP layer grew four ways to solve one CoverProblem (dense subset DP,
// v1 DFS, v2 best-first Lagrangian B&B, parallel rounds/free-run B&B), all
// selected through ad-hoc BnbOptions flags. This header makes each of them
// -- plus the implicit-hitting-set solver (ucp/hitting_set.hpp) -- a
// first-class CoverSolver behind one string-keyed registry, so call sites
// pick a backend by name (BnbOptions::backend), race the whole roster
// ("portfolio"), or let per-instance features choose ("heuristic").
//
// Registry order IS portfolio priority order:
//
//     dense_dp  bnb_v2  hitting_set  parallel_bnb  dfs_v1
//
// Portfolio determinism contract (docs/performance.md): the race returns
// the solution of the LOWEST-PRIORITY-INDEX backend that proves optimality,
// and a backend can only be cross-cancelled by a prover with a SMALLER
// index. A backend is therefore never perturbed by anything that could
// outrank it: whether backend i proves optimality -- and the exact bytes of
// its solution -- is a pure function of (instance, options), independent of
// thread count and wall-clock interleaving. Racing merely decides how soon
// the losers stop burning cycles, never who wins or what is returned.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ucp/bnb_options.hpp"
#include "ucp/cover.hpp"

namespace cdcs::ucp {

/// One registered backend. Stateless and immutable after registration: the
/// registry hands out const pointers that many threads may use at once.
class CoverSolver {
 public:
  virtual ~CoverSolver() = default;

  /// Registry key ("dense_dp", "dfs_v1", "bnb_v2", "parallel_bnb",
  /// "hitting_set").
  virtual std::string_view name() const = 0;

  /// False when this backend structurally cannot solve the instance (e.g.
  /// the dense DP above kDenseDpMaxRows rows). The portfolio skips
  /// inapplicable members; explicit selection of one throws.
  virtual bool applicable(const CoverProblem& problem) const {
    (void)problem;
    return true;
  }

  /// Whether the portfolio races this backend. parallel_bnb opts out: it
  /// wants the worker pool for itself, which would fight the race for the
  /// same threads, and explores the identical tree as bnb_v2 anyway.
  virtual bool races_in_portfolio() const { return true; }

  /// Solves the instance. `options.backend` is ignored (the caller already
  /// routed); every other BnbOptions field is honoured where it applies
  /// (deadline, max_nodes, fault_injector, warm starts, frontier cap).
  /// The returned CoverSolution carries the shared contract: cost/chosen,
  /// `optimal`, `lower_bound`, `stop`, `nodes_explored`,
  /// `explored_fingerprint` where the engine hashes one.
  virtual CoverSolution solve(const CoverProblem& problem,
                              const BnbOptions& options) const = 0;
};

/// All registered backends, in fixed priority order (also the portfolio's
/// race priority). The roster is compiled in; there is no dynamic
/// registration, which keeps the order -- and with it every determinism
/// pin -- a property of the binary, not of initialization races.
const std::vector<const CoverSolver*>& registered_cover_solvers();

/// Registry lookup; null for unknown names.
const CoverSolver* find_cover_solver(std::string_view name);

/// Registered names in priority order, for CLI validation and --help.
std::vector<std::string> registered_cover_solver_names();

/// "dense_dp, bnb_v2, ..." -- the names joined for diagnostics.
std::string registered_cover_solver_list();

/// Matrix density: fraction of nonzero entries (0 for degenerate shapes).
double cover_density(const CoverProblem& problem);

/// Per-instance backend choice from the rows x cols x density features the
/// bench harness records (BENCH_pr.json cover_solver_matrix): the dense DP
/// whenever the row-subset table fits, the hitting-set solver for very wide
/// sparse matrices where few rows bind, best-first B&B otherwise. Always
/// returns an applicable registered backend.
std::string_view select_cover_backend(std::size_t rows, std::size_t cols,
                                      double density);

/// Races every applicable racing backend on `options.pool` (sequentially
/// on the caller's thread when no pool with >1 workers is mounted, or when
/// a fault injector is armed -- racing members would otherwise consume the
/// plan's deterministic hit schedule in pool-timing order). Cancellation is
/// priority-filtered as documented above. The returned solution is the
/// winner's, with `backend` = the winner's name and `portfolio` recording
/// every member's outcome in priority order. With no prover, the cheapest
/// incumbent wins (ties to the smaller index) and `lower_bound` is the max
/// over the members' proven bounds.
CoverSolution solve_portfolio(const CoverProblem& problem,
                              const BnbOptions& options);

/// Outcome labels for reports and metrics ("won", "lost", "cancelled",
/// "degraded").
std::string_view to_string(BackendOutcome outcome);

}  // namespace cdcs::ucp
