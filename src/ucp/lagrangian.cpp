#include "ucp/lagrangian.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ucp/greedy.hpp"

namespace cdcs::ucp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Columns worth scanning each iteration: available AND touching at least
/// one uncovered row (others contribute rc_j = w_j >= 0, i.e. nothing).
std::vector<std::size_t> active_columns(const CoverProblem& p,
                                        const Bitset& uncovered,
                                        const Bitset& available) {
  std::vector<std::size_t> cols;
  available.for_each([&](std::size_t j) {
    if (p.column(j).rows.intersects(uncovered)) cols.push_back(j);
  });
  return cols;
}

}  // namespace

std::vector<double> mis_multipliers(const CoverProblem& problem,
                                    const Bitset& uncovered,
                                    const Bitset& available) {
  std::vector<double> lambda(problem.num_rows(), 0.0);
  Bitset blocked(problem.num_columns());
  uncovered.for_each([&](std::size_t r) {
    const Bitset& cov = problem.row_cover(r);
    if (cov.intersects_masked(available, blocked)) return;
    double cheapest = kInf;
    cov.for_each_and(available, [&](std::size_t j) {
      cheapest = std::min(cheapest, problem.column(j).weight);
    });
    if (cheapest < kInf) {
      lambda[r] = cheapest;
      blocked.unite_and(cov, available);
    }
  });
  return lambda;
}

LagrangianBound subgradient_bound(const CoverProblem& problem,
                                  const Bitset& uncovered,
                                  const Bitset& available,
                                  double upper_bound,
                                  const SubgradientOptions& options,
                                  const std::vector<double>* warm_start) {
  LagrangianBound out;
  out.multipliers.assign(problem.num_rows(), 0.0);
  out.reduced_costs.assign(problem.num_columns(), 0.0);
  if (uncovered.none()) return out;

  std::vector<double> lambda;
  if (warm_start != nullptr && warm_start->size() == problem.num_rows()) {
    lambda.assign(problem.num_rows(), 0.0);
    uncovered.for_each([&](std::size_t r) {
      lambda[r] = std::max(0.0, (*warm_start)[r]);
    });
  } else {
    lambda = mis_multipliers(problem, uncovered, available);
  }

  const std::vector<std::size_t> cols =
      active_columns(problem, uncovered, available);

  std::vector<double> rc(cols.size(), 0.0);
  std::vector<double> grad(problem.num_rows(), 0.0);
  out.bound = -kInf;
  double scale = options.initial_step_scale;
  std::size_t stall = 0;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    ++out.iterations;

    // Evaluate L(lambda): reduced costs, dual value, and the subgradient
    // g_r = 1 - (columns taken that cover r) in one pass.
    double value = 0.0;
    uncovered.for_each([&](std::size_t r) {
      value += lambda[r];
      grad[r] = 1.0;
    });
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const Column& col = problem.column(cols[c]);
      rc[c] = col.weight - col.rows.dot_and(uncovered, lambda.data());
      if (rc[c] < 0.0) {
        value += rc[c];
        col.rows.for_each_and(uncovered,
                              [&](std::size_t r) { grad[r] -= 1.0; });
      }
    }

    if (value > out.bound) {
      out.bound = value;
      uncovered.for_each([&](std::size_t r) { out.multipliers[r] = lambda[r]; });
      for (std::size_t c = 0; c < cols.size(); ++c) {
        out.reduced_costs[cols[c]] = rc[c];
      }
      stall = 0;
    } else if (++stall >= options.stall_limit) {
      scale *= options.step_decay;
      stall = 0;
      if (scale < options.min_step_scale) break;
    }

    // The bound already proves the incumbent unbeatable; the caller prunes.
    if (value >= upper_bound) break;

    double norm2 = 0.0;
    uncovered.for_each([&](std::size_t r) { norm2 += grad[r] * grad[r]; });
    if (norm2 == 0.0) break;  // dual-feasible primal point: L is maximal here

    const double gap = std::isfinite(upper_bound)
                           ? upper_bound - value
                           : std::max(std::abs(value), 1.0);
    const double step = scale * gap / norm2;
    uncovered.for_each([&](std::size_t r) {
      lambda[r] = std::max(0.0, lambda[r] + step * grad[r]);
    });
  }

  if (!std::isfinite(out.bound)) out.bound = 0.0;
  out.bound = std::max(out.bound, 0.0);
  return out;
}

double lagrangian_root_bound(const CoverProblem& problem,
                             const SubgradientOptions& options) {
  if (problem.num_rows() == 0) return 0.0;
  Bitset uncovered(problem.num_rows());
  uncovered.set_all();
  Bitset available(problem.num_columns());
  available.set_all();

  const double mis = independent_rows_lower_bound(problem);
  const CoverSolution greedy = solve_greedy(problem);
  const LagrangianBound lagr = subgradient_bound(
      problem, uncovered, available, greedy.cost, options, nullptr);
  return std::max(mis, lagr.bound);
}

}  // namespace cdcs::ucp
