// Small dynamic bitset tuned for covering-matrix rows. The UCP solver works
// on row sets of a few dozen to a few thousand elements; std::vector<bool>
// lacks word-level set algebra, so this provides exactly the operations the
// reductions and bounds need (subset test, intersection count, iteration).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cdcs::ucp {

class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }

  void set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (std::uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  /// Sets every bit in [0, size()).
  void set_all() {
    if (words_.empty()) return;
    for (std::uint64_t& w : words_) w = ~std::uint64_t{0};
    const std::size_t tail = bits_ & 63;
    if (tail != 0) words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
  bool any() const {
    for (std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool none() const { return !any(); }

  /// this := this & ~other
  void subtract(const Bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }
  /// this := this | other
  void unite(const Bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }
  /// this := this & other
  void intersect(const Bitset& other) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  bool intersects(const Bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }
  std::size_t intersection_count(const Bitset& other) const {
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      c += std::popcount(words_[i] & other.words_[i]);
    }
    return c;
  }
  /// popcount(this & other), stopping as soon as it reaches `cap` -- the
  /// {0, 1, many} distinction the essential-column scan needs without
  /// finishing the count.
  std::size_t intersection_count_capped(const Bitset& other,
                                        std::size_t cap) const {
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size() && c < cap; ++i) {
      c += std::popcount(words_[i] & other.words_[i]);
    }
    return c < cap ? c : cap;
  }
  /// True when (this & other & mask) is nonempty.
  bool intersects_masked(const Bitset& other, const Bitset& mask) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i] & mask.words_[i]) return true;
    }
    return false;
  }
  bool is_subset_of(const Bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }
  /// True when (this & mask) is a subset of `other` -- equivalently, of
  /// (other & mask). One pass, no temporaries.
  bool and_is_subset_of(const Bitset& mask, const Bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & mask.words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }
  /// this := this | (a & b)
  void unite_and(const Bitset& a, const Bitset& b) {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      words_[i] |= a.words_[i] & b.words_[i];
    }
  }

  /// sum of weights[i] over i in (this & mask) -- the reduced-cost kernel of
  /// the Lagrangian bound: with `this` = a column's row set, `mask` = the
  /// uncovered rows, and `weights` = the multipliers, this is the amount the
  /// column's weight is discounted by in the relaxation. `weights` must have
  /// at least size() entries.
  double dot_and(const Bitset& mask, const double* weights) const {
    double sum = 0.0;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i] & mask.words_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        sum += weights[(i << 6) + b];
        w &= w - 1;
      }
    }
    return sum;
  }

  /// Index of the lowest set bit, or size() when empty.
  std::size_t first() const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return (i << 6) + std::countr_zero(words_[i]);
      }
    }
    return bits_;
  }

  /// Index of the lowest bit set in (this & other), or size() when the
  /// intersection is empty.
  std::size_t first_and(const Bitset& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i] & other.words_[i];
      if (w != 0) return (i << 6) + std::countr_zero(w);
    }
    return bits_;
  }

  /// Calls f(index) for every set bit in ascending order.
  template <typename F>
  void for_each(F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        f((i << 6) + b);
        w &= w - 1;
      }
    }
  }

  /// Calls f(index) for every set bit in ascending order until f returns
  /// true (stop). Returns true when f stopped the scan.
  template <typename F>
  bool for_each_until(F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        if (f((i << 6) + b)) return true;
        w &= w - 1;
      }
    }
    return false;
  }

  /// Calls f(index) for every bit set in (this & other), ascending.
  template <typename F>
  void for_each_and(const Bitset& other, F&& f) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i] & other.words_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        f((i << 6) + b);
        w &= w - 1;
      }
    }
  }

  friend bool operator==(const Bitset&, const Bitset&) = default;

 private:
  std::size_t bits_{0};
  std::vector<std::uint64_t> words_;
};

}  // namespace cdcs::ucp
