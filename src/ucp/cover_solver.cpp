#include "ucp/cover_solver.hpp"

#include <algorithm>
#include <future>
#include <limits>
#include <utility>

#include "support/deadline.hpp"
#include "support/thread_pool.hpp"
#include "ucp/bnb.hpp"
#include "ucp/dp.hpp"
#include "ucp/hitting_set.hpp"

namespace cdcs::ucp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Every backend is a thin forced-options wrapper over the legacy automatic
/// dispatch (detail::solve_exact_auto), so selecting the backend that the
/// auto dispatch would have picked is byte-identical to not selecting one
/// at all -- which is what keeps every pinned node count and fingerprint
/// valid under explicit backend selection.

class DenseDpSolver final : public CoverSolver {
 public:
  std::string_view name() const override { return "dense_dp"; }
  bool applicable(const CoverProblem& problem) const override {
    return problem.num_rows() <= kDenseDpMaxRows;
  }
  CoverSolution solve(const CoverProblem& problem,
                      const BnbOptions& options) const override {
    BnbOptions forced = options;
    forced.backend.clear();
    forced.dense_dp_max_rows = kDenseDpMaxRows;
    return detail::solve_exact_auto(problem, forced);
  }
};

class DfsV1Solver final : public CoverSolver {
 public:
  std::string_view name() const override { return "dfs_v1"; }
  CoverSolution solve(const CoverProblem& problem,
                      const BnbOptions& options) const override {
    // The pinned v1 reference configuration (tests/test_ucp.cpp
    // legacy_options): DFS with the v2 bound machinery off.
    BnbOptions forced = options;
    forced.backend.clear();
    forced.dense_dp_max_rows = 0;
    forced.mode = BnbMode::kSerial;
    forced.search_order = SearchOrder::kDepthFirst;
    forced.use_lagrangian_bound = false;
    forced.use_reduced_cost_fixing = false;
    return detail::solve_exact_auto(problem, forced);
  }
};

class BnbV2Solver final : public CoverSolver {
 public:
  std::string_view name() const override { return "bnb_v2"; }
  CoverSolution solve(const CoverProblem& problem,
                      const BnbOptions& options) const override {
    // Serial best-first with whatever bound configuration the caller set
    // (Lagrangian + reduced-cost fixing on by default).
    BnbOptions forced = options;
    forced.backend.clear();
    forced.dense_dp_max_rows = 0;
    forced.mode = BnbMode::kSerial;
    forced.search_order = SearchOrder::kBestFirst;
    return detail::solve_exact_auto(problem, forced);
  }
};

class ParallelBnbSolver final : public CoverSolver {
 public:
  std::string_view name() const override { return "parallel_bnb"; }
  /// The parallel engine wants the worker pool for itself; racing it inside
  /// the portfolio would fight the other members for the same threads, and
  /// rounds mode explores the same best-first tree bnb_v2 already covers.
  bool races_in_portfolio() const override { return false; }
  CoverSolution solve(const CoverProblem& problem,
                      const BnbOptions& options) const override {
    BnbOptions forced = options;
    forced.backend.clear();
    forced.dense_dp_max_rows = 0;
    // Deterministic rounds unless the caller explicitly asked to free-run.
    forced.mode = options.mode == BnbMode::kFreeRun ? BnbMode::kFreeRun
                                                    : BnbMode::kRounds;
    return detail::solve_exact_auto(problem, forced);
  }
};

class HittingSetSolver final : public CoverSolver {
 public:
  std::string_view name() const override { return "hitting_set"; }
  CoverSolution solve(const CoverProblem& problem,
                      const BnbOptions& options) const override {
    return solve_hitting_set(problem, options);
  }
};

}  // namespace

const std::vector<const CoverSolver*>& registered_cover_solvers() {
  // Registry order IS portfolio priority order (header comment): the dense
  // DP first (unbeatable when the table fits), then serial best-first, then
  // the hitting-set loop, then the opt-out parallel engine, with the v1
  // reference tree last (it exists for reproducibility, not speed).
  static const DenseDpSolver dense_dp;
  static const BnbV2Solver bnb_v2;
  static const HittingSetSolver hitting_set;
  static const ParallelBnbSolver parallel_bnb;
  static const DfsV1Solver dfs_v1;
  static const std::vector<const CoverSolver*> all = {
      &dense_dp, &bnb_v2, &hitting_set, &parallel_bnb, &dfs_v1};
  return all;
}

const CoverSolver* find_cover_solver(std::string_view name) {
  for (const CoverSolver* solver : registered_cover_solvers()) {
    if (solver->name() == name) return solver;
  }
  return nullptr;
}

std::vector<std::string> registered_cover_solver_names() {
  std::vector<std::string> names;
  for (const CoverSolver* solver : registered_cover_solvers()) {
    names.emplace_back(solver->name());
  }
  return names;
}

std::string registered_cover_solver_list() {
  std::string joined;
  for (const CoverSolver* solver : registered_cover_solvers()) {
    if (!joined.empty()) joined += ", ";
    joined += solver->name();
  }
  return joined;
}

double cover_density(const CoverProblem& problem) {
  const std::size_t rows = problem.num_rows();
  const std::size_t cols = problem.num_columns();
  if (rows == 0 || cols == 0) return 0.0;
  std::size_t ones = 0;
  for (const Column& c : problem.columns()) ones += c.rows.count();
  return static_cast<double>(ones) /
         (static_cast<double>(rows) * static_cast<double>(cols));
}

std::string_view select_cover_backend(std::size_t rows, std::size_t cols,
                                      double density) {
  // Trained on the BENCH_pr.json cover_solver_matrix features: the dense DP
  // dominates whenever the 2^rows table fits; very wide sparse matrices --
  // where only a handful of rows ever bind -- converge in a few tiny
  // hitting-set cores; everything else goes to serial best-first B&B.
  if (rows <= kDenseDpMaxRows) return "dense_dp";
  if (cols >= rows * 8 && density <= 0.25) return "hitting_set";
  return "bnb_v2";
}

std::string_view to_string(BackendOutcome outcome) {
  switch (outcome) {
    case BackendOutcome::kWon:
      return "won";
    case BackendOutcome::kLost:
      return "lost";
    case BackendOutcome::kCancelled:
      return "cancelled";
    case BackendOutcome::kDegraded:
      return "degraded";
  }
  return "unknown";
}

CoverSolution solve_portfolio(const CoverProblem& problem,
                              const BnbOptions& options) {
  std::vector<const CoverSolver*> members;
  for (const CoverSolver* solver : registered_cover_solvers()) {
    if (solver->races_in_portfolio() && solver->applicable(problem)) {
      members.push_back(solver);
    }
  }
  // bnb_v2 / hitting_set / dfs_v1 are applicable to every instance, so the
  // roster is never empty.
  const std::size_t n = members.size();

  // Per-member cancel tokens on a COPY of the caller's deadline: a member
  // keeps the caller's wall-clock/check budget, and cross-cancellation by a
  // higher-priority prover latches only that member's copy.
  std::vector<support::CancelToken> tokens(n);
  std::vector<BnbOptions> member_options(n, options);
  for (std::size_t i = 0; i < n; ++i) {
    BnbOptions& o = member_options[i];
    o.backend.clear();
    o.pool = nullptr;  // members are serial engines; the pool runs the race
    o.threads = 1;
    o.deadline = options.deadline;
    o.deadline.attach(tokens[i]);
  }

  std::vector<CoverSolution> results(n);
  std::vector<char> ran(n, 0);

  // NodeEvaluator construction warms CoverProblem's lazy row_cover
  // transpose, which is NOT safe to build from racing threads; warm it once
  // here before any member starts.
  if (problem.num_rows() > 0 && problem.num_columns() > 0) {
    problem.row_cover(0);
  }

  // Priority-filtered cross-cancellation: a member that proves optimality
  // cancels every LOWER-priority member, never a higher one. Members below
  // the eventual winner therefore always run to completion uncancelled,
  // which is what makes the winner -- and its exact solution bytes -- a
  // pure function of (instance, options).
  auto run_member = [&](std::size_t i) {
    results[i] = members[i]->solve(problem, member_options[i]);
    ran[i] = 1;
    if (results[i].optimal) {
      for (std::size_t j = i + 1; j < n; ++j) tokens[j].cancel();
    }
  };

  // A fault injector's hit schedule is deterministic only when the sites
  // are consulted in one order, so an armed plan forces the sequential
  // path; so does the absence of a usable pool.
  const bool race = options.pool != nullptr && options.pool->size() > 1 &&
                    options.fault_injector == nullptr && n > 1;
  if (race) {
    std::vector<std::future<void>> pending;
    pending.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) {
      pending.push_back(options.pool->submit([&run_member, i] {
        run_member(i);
      }));
    }
    run_member(0);
    for (std::future<void>& f : pending) f.get();
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      run_member(i);
      if (results[i].optimal) break;  // lower priorities cannot win anyway
    }
  }

  // Winner: the lowest-index prover, else the cheapest incumbent (ties to
  // the lower index), else member 0's (empty/infeasible) result.
  std::size_t winner = n;
  for (std::size_t i = 0; i < n && winner == n; ++i) {
    if (ran[i] && results[i].optimal) winner = i;
  }
  if (winner == n) {
    double best = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (ran[i] && results[i].cost < best) {
        best = results[i].cost;
        winner = i;
      }
    }
    if (winner == n) winner = 0;
  }

  double strongest_bound = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (ran[i]) strongest_bound = std::max(strongest_bound,
                                           results[i].lower_bound);
  }

  CoverSolution sol = results[winner];
  sol.backend = members[winner]->name();
  if (!sol.optimal) sol.lower_bound = std::max(sol.lower_bound,
                                               strongest_bound);
  sol.portfolio.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PortfolioMember m;
    m.backend = members[i]->name();
    if (!ran[i]) {
      m.outcome = BackendOutcome::kCancelled;  // never started
    } else {
      m.cost = results[i].cost;
      m.lower_bound = results[i].lower_bound;
      m.nodes_explored = results[i].nodes_explored;
      m.optimal = results[i].optimal;
      m.stop = results[i].stop;
      if (i == winner) {
        m.outcome = BackendOutcome::kWon;
      } else if (results[i].optimal) {
        m.outcome = BackendOutcome::kLost;
      } else if (tokens[i].cancelled() &&
                 results[i].stop == CoverStop::kDeadline) {
        m.outcome = BackendOutcome::kCancelled;
      } else {
        m.outcome = BackendOutcome::kDegraded;
      }
    }
    sol.portfolio.push_back(std::move(m));
  }
  return sol;
}

}  // namespace cdcs::ucp
