#include "ucp/greedy.hpp"

#include <algorithm>
#include <limits>

namespace cdcs::ucp {

CoverSolution solve_greedy(const CoverProblem& problem) {
  CoverSolution sol;
  Bitset uncovered(problem.num_rows());
  for (std::size_t r = 0; r < problem.num_rows(); ++r) uncovered.set(r);

  while (uncovered.any()) {
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_j = problem.num_columns();
    for (std::size_t j = 0; j < problem.num_columns(); ++j) {
      const std::size_t gain =
          problem.column(j).rows.intersection_count(uncovered);
      if (gain == 0) continue;
      const double ratio =
          problem.column(j).weight / static_cast<double>(gain);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_j = j;
      }
    }
    if (best_j == problem.num_columns()) {
      // Some row is uncoverable; report infeasibility.
      sol.chosen.clear();
      sol.cost = std::numeric_limits<double>::infinity();
      return sol;
    }
    sol.chosen.push_back(best_j);
    uncovered.subtract(problem.column(best_j).rows);
  }
  std::sort(sol.chosen.begin(), sol.chosen.end());
  sol.cost = problem.cost_of(sol.chosen);
  return sol;
}

}  // namespace cdcs::ucp
