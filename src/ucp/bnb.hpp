// Exact weighted-UCP branch-and-bound.
//
// A from-scratch reimplementation of the classic covering-solver toolbox the
// paper points at ([4] Goldberg/Carloni/Villa/Brayton/Sangiovanni-
// Vincentelli, [8] Liao--Devadas):
//   * essential-column extraction (a row covered by a single column),
//   * row dominance (a row whose every covering column also covers another
//     row is automatically satisfied and can be ignored),
//   * column dominance (a column covering a subset of another's remaining
//     rows at no lower weight can be discarded),
//   * a maximal-independent-set lower bound (rows pairwise sharing no column
//     each require a distinct column, so the sum of their cheapest covers is
//     a valid bound),
//   * best-first branching on the hardest row (fewest available columns),
//     trying its columns cheapest-first, with the standard inclusion/
//     exclusion completeness argument.
// The solver is exact whenever it finishes within the node budget; the
// `optimal` flag reports this.
#pragma once

#include "support/deadline.hpp"
#include "ucp/cover.hpp"

namespace cdcs::ucp {

struct BnbOptions {
  std::size_t max_nodes = 10'000'000;
  /// Wall-clock budget (plus cooperative cancellation); polled once per
  /// branch node and periodically inside the dense DP. On expiry the best
  /// incumbent so far is returned with `optimal = false` and
  /// `deadline_expired = true`.
  support::Deadline deadline;
  bool use_row_dominance = true;
  bool use_column_dominance = true;
  bool use_mis_lower_bound = true;
  /// Column dominance is O(columns^2); beyond this depth it is skipped.
  int column_dominance_max_depth = 4;
  /// Instances with at most this many rows are solved by the exact dense
  /// subset DP (ucp/dp.hpp) instead of branching -- orders of magnitude
  /// faster on the narrow-and-wide matrices synthesis produces. Set to 0 to
  /// force branch-and-bound.
  std::size_t dense_dp_max_rows = 20;
};

/// Exact minimum-weight cover. Returns cost = +infinity and empty `chosen`
/// when the problem is infeasible. `optimal` is true when the search
/// completed within `max_nodes` (otherwise the best incumbent is returned).
CoverSolution solve_exact(const CoverProblem& problem,
                          const BnbOptions& options = {});

}  // namespace cdcs::ucp
