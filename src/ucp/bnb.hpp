// Exact weighted-UCP branch-and-bound (solver v2).
//
// A from-scratch reimplementation of the classic covering-solver toolbox the
// paper points at ([4] Goldberg/Carloni/Villa/Brayton/Sangiovanni-
// Vincentelli, [8] Liao--Devadas), extended with the bound machinery of the
// set-covering literature (Caprara/Fischetti/Toth-style Lagrangian
// relaxation):
//   * essential-column extraction (a row covered by a single column),
//   * row dominance (a row whose every covering column also covers another
//     row is automatically satisfied and can be ignored),
//   * column dominance (a column covering a subset of another's remaining
//     rows at no lower weight can be discarded),
//   * a maximal-independent-set lower bound (rows pairwise sharing no column
//     each require a distinct column, so the sum of their cheapest covers is
//     a valid bound), served from per-row weight-sorted column lists so each
//     node probes a handful of entries instead of rescanning every column,
//   * a subgradient Lagrangian lower bound (ucp/lagrangian.hpp) that
//     provably dominates the MIS bound at the root and is warm-started from
//     the parent's multipliers at every child node,
//   * reduced-cost column fixing: with node bound L and reduced costs rc,
//     any cover through column j costs >= L + max(0, rc_j); columns pushed
//     strictly past the incumbent are discarded (at the root and
//     periodically during the search) without losing any optimal cover,
//   * incumbent seeding from the greedy cover and an optional caller-
//     provided warm start, so pruning has a real upper bound at node zero,
//   * branching on the hardest row (fewest available columns), trying its
//     columns cheapest-first, with the standard inclusion/exclusion
//     completeness argument -- explored depth-first (the reference tree) or
//     best-first on the node lower bound behind `search_order`.
// Every configuration returns the same optimal cover cost; the legacy
// configuration (Lagrangian + fixing off, DFS) reproduces the v1 search
// tree node-for-node, which determinism tests pin. The solver is exact
// whenever it finishes within the node budget; the `optimal` flag reports
// this.
//
// BnbOptions itself lives in ucp/bnb_options.hpp so option-carrying types
// (SynthesisOptions, engines, CLIs) need not include the solver.
#pragma once

#include "ucp/bnb_options.hpp"
#include "ucp/cover.hpp"

namespace cdcs::ucp {

/// Exact minimum-weight cover. Returns cost = +infinity and empty `chosen`
/// when the problem is infeasible. `optimal` is true when the search
/// completed within `max_nodes` (otherwise the best incumbent is returned).
/// Non-optimal exits report the Lagrangian root bound (fallback:
/// independent-rows bound) in CoverSolution::lower_bound.
///
/// Backend dispatch (ucp/cover_solver.hpp): with `options.backend` empty
/// this is the legacy automatic dispatch every pinned node count was
/// recorded against -- dense DP below the row cutoff, then BnbOptions::mode
/// picks the engine -- with CoverSolution::backend labelled after the fact.
/// A registered backend name forces that backend, "portfolio" races the
/// racing backends and returns the fixed-priority winner, and "heuristic"
/// picks a backend from the instance's rows x cols x density features.
/// Throws std::invalid_argument for unknown names or a named backend that
/// cannot handle the instance (e.g. dense_dp above kDenseDpMaxRows rows).
CoverSolution solve_exact(const CoverProblem& problem,
                          const BnbOptions& options = {});

namespace detail {
/// The legacy automatic dispatch behind solve_exact, without the backend
/// routing, tracing span, or per-backend metrics. Internal: the registered
/// backends (ucp/cover_solver.cpp) and the hitting-set sub-solves
/// (ucp/hitting_set.cpp) call it with forced options; everyone else goes
/// through solve_exact. `options.backend` is ignored.
CoverSolution solve_exact_auto(const CoverProblem& problem,
                               const BnbOptions& options);
}  // namespace detail

}  // namespace cdcs::ucp
