// Exact weighted-UCP branch-and-bound (solver v2).
//
// A from-scratch reimplementation of the classic covering-solver toolbox the
// paper points at ([4] Goldberg/Carloni/Villa/Brayton/Sangiovanni-
// Vincentelli, [8] Liao--Devadas), extended with the bound machinery of the
// set-covering literature (Caprara/Fischetti/Toth-style Lagrangian
// relaxation):
//   * essential-column extraction (a row covered by a single column),
//   * row dominance (a row whose every covering column also covers another
//     row is automatically satisfied and can be ignored),
//   * column dominance (a column covering a subset of another's remaining
//     rows at no lower weight can be discarded),
//   * a maximal-independent-set lower bound (rows pairwise sharing no column
//     each require a distinct column, so the sum of their cheapest covers is
//     a valid bound), served from per-row weight-sorted column lists so each
//     node probes a handful of entries instead of rescanning every column,
//   * a subgradient Lagrangian lower bound (ucp/lagrangian.hpp) that
//     provably dominates the MIS bound at the root and is warm-started from
//     the parent's multipliers at every child node,
//   * reduced-cost column fixing: with node bound L and reduced costs rc,
//     any cover through column j costs >= L + max(0, rc_j); columns pushed
//     strictly past the incumbent are discarded (at the root and
//     periodically during the search) without losing any optimal cover,
//   * incumbent seeding from the greedy cover and an optional caller-
//     provided warm start, so pruning has a real upper bound at node zero,
//   * branching on the hardest row (fewest available columns), trying its
//     columns cheapest-first, with the standard inclusion/exclusion
//     completeness argument -- explored depth-first (the reference tree) or
//     best-first on the node lower bound behind `search_order`.
// Every configuration returns the same optimal cover cost; the legacy
// configuration (Lagrangian + fixing off, DFS) reproduces the v1 search
// tree node-for-node, which determinism tests pin. The solver is exact
// whenever it finishes within the node budget; the `optimal` flag reports
// this.
#pragma once

#include <vector>

#include "support/deadline.hpp"
#include "ucp/cover.hpp"
#include "ucp/lagrangian.hpp"

namespace cdcs::ucp {

/// Node-expansion order of the branch-and-bound.
enum class SearchOrder {
  /// Classic recursive include/exclude DFS -- the reference tree whose node
  /// counts are pinned for determinism.
  kDepthFirst,
  /// Explicit frontier ordered by node lower bound (ties by creation order,
  /// so still fully deterministic). Reaches the optimum sooner on wide
  /// trees; proves optimality the moment the best frontier bound meets the
  /// incumbent. Costs memory proportional to the frontier.
  kBestFirst,
};

struct BnbOptions {
  std::size_t max_nodes = 10'000'000;
  /// Wall-clock budget (plus cooperative cancellation); polled once per
  /// branch node and periodically inside the dense DP. On expiry the best
  /// incumbent so far is returned with `optimal = false` and
  /// `deadline_expired = true`.
  support::Deadline deadline;
  bool use_row_dominance = true;
  bool use_column_dominance = true;
  bool use_mis_lower_bound = true;
  /// Column dominance is O(columns^2); beyond this depth it is skipped.
  int column_dominance_max_depth = 4;

  /// Subgradient Lagrangian node bounds (dominate the MIS bound; see
  /// ucp/lagrangian.hpp). Disabling this and `use_reduced_cost_fixing`
  /// reproduces the v1 search tree exactly.
  bool use_lagrangian_bound = true;
  /// Subgradient iterations at the root (where the bound pays for the whole
  /// tree) and at interior nodes (warm-started from the parent, so a few
  /// corrective steps suffice).
  std::size_t lagrangian_root_iterations = 120;
  std::size_t lagrangian_node_iterations = 8;

  /// Permanently drop columns whose reduced cost pushes them strictly past
  /// the incumbent (requires the Lagrangian bound). Applied at the root and
  /// then every `reduced_cost_fixing_period` nodes. Never removes a column
  /// belonging to ANY optimal cover (the test is strict).
  bool use_reduced_cost_fixing = true;
  std::size_t reduced_cost_fixing_period = 64;

  /// Node-expansion order; kDepthFirst is the pinned reference tree.
  SearchOrder search_order = SearchOrder::kDepthFirst;
  /// Frontier cap for kBestFirst; beyond it the search stops and returns
  /// the incumbent (optimal = false), like exhausting `max_nodes`.
  std::size_t best_first_max_frontier = 1'000'000;

  /// Optional feasible cover (column indices) seeding the incumbent on top
  /// of the built-in greedy seed; the cheaper of the two wins. Ignored if it
  /// does not cover every row. The synthesizer passes the point-to-point
  /// singleton cover here so the solver starts with the anytime ladder's
  /// last-resort upper bound already in hand.
  std::vector<std::size_t> warm_start;

  /// Instances with at most this many rows are solved by the exact dense
  /// subset DP (ucp/dp.hpp) instead of branching -- orders of magnitude
  /// faster on the narrow-and-wide matrices synthesis produces. Set to 0 to
  /// force branch-and-bound.
  std::size_t dense_dp_max_rows = 20;
};

/// Exact minimum-weight cover. Returns cost = +infinity and empty `chosen`
/// when the problem is infeasible. `optimal` is true when the search
/// completed within `max_nodes` (otherwise the best incumbent is returned).
/// Non-optimal exits report the Lagrangian root bound (fallback:
/// independent-rows bound) in CoverSolution::lower_bound.
CoverSolution solve_exact(const CoverProblem& problem,
                          const BnbOptions& options = {});

}  // namespace cdcs::ucp
