#include "ucp/dp.hpp"

#include <algorithm>
#include <cmath>
#include <bit>
#include <limits>
#include <stdexcept>
#include <vector>

#include "support/fault.hpp"

namespace cdcs::ucp {

CoverSolution solve_dp(const CoverProblem& problem,
                       const support::Deadline& deadline,
                       std::size_t max_states,
                       support::FaultInjector* injector) {
  const std::size_t rows = problem.num_rows();
  if (rows > kDenseDpMaxRows) {
    throw std::invalid_argument("solve_dp: too many rows for the dense DP");
  }
  CoverSolution sol;
  if (rows == 0) {
    sol.optimal = true;
    return sol;
  }
  // The table is all-or-nothing: a half-filled DP yields no incumbent, so a
  // budget that cannot fit every state refuses up front with zero work.
  if ((std::size_t{1} << rows) > max_states) {
    sol.cost = std::numeric_limits<double>::infinity();
    sol.stop = CoverStop::kNodeBudget;
    return sol;
  }
  if (injector != nullptr && injector->should_fail(support::fault_sites::kUcpFrontier)) {
    sol.cost = std::numeric_limits<double>::infinity();
    sol.stop = CoverStop::kAborted;
    return sol;
  }

  // Column row-masks, deduplicated to the cheapest column per mask (an
  // exact reduction: identical coverage at higher weight is never useful).
  const std::size_t num_cols = problem.num_columns();
  std::vector<std::uint32_t> col_mask(num_cols, 0);
  for (std::size_t j = 0; j < num_cols; ++j) {
    problem.column(j).rows.for_each([&](std::size_t r) {
      col_mask[j] |= (std::uint32_t{1} << r);
    });
  }
  // Per-row: columns covering it, cheapest-first (better pruning locality).
  std::vector<std::vector<std::uint32_t>> cols_of_row(rows);
  {
    std::vector<std::uint32_t> order(num_cols);
    for (std::size_t j = 0; j < num_cols; ++j) order[j] = j;
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return problem.column(a).weight < problem.column(b).weight;
    });
    for (std::uint32_t j : order) {
      for (std::size_t r = 0; r < rows; ++r) {
        if (col_mask[j] & (std::uint32_t{1} << r)) {
          cols_of_row[r].push_back(j);
        }
      }
    }
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t full = (std::size_t{1} << rows) - 1;
  std::vector<double> dp(full + 1, kInf);
  std::vector<std::uint32_t> choice(full + 1, UINT32_MAX);
  dp[0] = 0.0;

  for (std::size_t m = 1; m <= full; ++m) {
    if ((m & 0xFFF) == 0) {
      if (deadline.expired()) {
        sol.cost = kInf;
        sol.nodes_explored = m;
        sol.deadline_expired = true;
        sol.stop = CoverStop::kDeadline;
        return sol;
      }
      if (injector != nullptr && injector->should_fail(support::fault_sites::kUcpFrontier)) {
        sol.cost = kInf;
        sol.nodes_explored = m;
        sol.stop = CoverStop::kAborted;
        return sol;
      }
    }
    const int r = std::countr_zero(m);  // lowest uncovered row must be covered
    double best = kInf;
    std::uint32_t best_col = UINT32_MAX;
    for (std::uint32_t j : cols_of_row[static_cast<std::size_t>(r)]) {
      const double w = problem.column(j).weight;
      if (w >= best) break;  // cheapest-first order: no improvement possible
      const double rest = dp[m & ~static_cast<std::size_t>(col_mask[j])];
      if (rest + w < best) {
        best = rest + w;
        best_col = j;
      }
    }
    dp[m] = best;
    choice[m] = best_col;
  }

  sol.nodes_explored = full + 1;
  if (!std::isfinite(dp[full])) {
    sol.cost = kInf;
    return sol;
  }
  sol.cost = dp[full];
  sol.optimal = true;
  // Reconstruct; a column may appear once (its mask strictly shrinks m).
  std::size_t m = full;
  while (m != 0) {
    const std::uint32_t j = choice[m];
    sol.chosen.push_back(j);
    m &= ~static_cast<std::size_t>(col_mask[j]);
  }
  std::sort(sol.chosen.begin(), sol.chosen.end());
  return sol;
}

}  // namespace cdcs::ucp
