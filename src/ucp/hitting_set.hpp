// Implicit-hitting-set solver for the weighted UCP.
//
// The dual view of covering: a cover must "hit" every row, so solving the
// problem restricted to a small CORE of rows yields a valid lower bound on
// the full optimum (any full cover, restricted to the columns touching the
// core, covers the core for no more cost). The implicit-hitting-set loop
// (Karp/Moreno-Centeno style, as used by MaxSAT and MIP hybrids):
//
//   1. solve the core-restricted instance EXACTLY (it is small: the
//      sub-solve goes through the ordinary solve_exact dispatch, dense DP
//      or best-first B&B);
//   2. if the core-optimal selection already covers every row of the full
//      instance, its cost equals the lower bound -- proven optimal, done;
//   3. otherwise lazily GENERATE the violated constraint: add the uncovered
//      row with the fewest covering columns (the most binding one; ties to
//      the lowest index) to the core and repeat.
//
// Each iteration greedily completes the core solution into a full cover for
// an anytime incumbent, so budgeted exits still return a feasible cover.
// The optimality certificate is the matching of bound and incumbent; on
// early exits the reported lower_bound is the strongest of the last proven
// core bound and bnb_core's root bounds (NodeEvaluator MIS /
// independent-rows), so callers always see an honest gap.
//
// Wide-and-sparse instances are the sweet spot: few rows ever bind, so the
// loop converges after solving a handful of tiny sub-instances instead of
// branching over thousands of near-equal columns.
#pragma once

#include "ucp/bnb_options.hpp"
#include "ucp/cover.hpp"

namespace cdcs::ucp {

/// Exact minimum-weight cover via the implicit-hitting-set loop. Honours
/// `options` deadline / max_nodes (shared across all sub-solves) /
/// best_first_max_frontier / fault_injector ("ucp.frontier", consulted once
/// per iteration) / warm_start; `options.backend` is ignored. Same result
/// contract as solve_exact, including CoverStop reasons and a valid
/// lower_bound on every exit.
CoverSolution solve_hitting_set(const CoverProblem& problem,
                                const BnbOptions& options);

}  // namespace cdcs::ucp
