#include "ucp/bnb.hpp"

#include <algorithm>
#include <limits>

#include "ucp/dp.hpp"
#include "ucp/greedy.hpp"

namespace cdcs::ucp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SearchState {
  Bitset uncovered;  ///< rows still to cover
  Bitset available;  ///< columns still selectable
};

// The search itself is the classic include/exclude branch-and-bound; what
// makes it fast is that every reduction predicate runs word-parallel over
// the CoverProblem::row_cover transpose bitsets:
//   * essential columns: popcount(row_cover(r) & available) with an early
//     cap at 2, instead of scanning every column per uncovered row;
//   * row dominance:  cols(r2) subseteq cols(r1) is one masked-subset pass;
//   * column dominance: masked-subset over column row-sets, no temporaries;
//   * MIS lower bound: blocked-column tracking is bitset union/intersection.
// The predicates, their visit order, and all tie-breaks are EXACTLY the
// scalar solver's, so nodes_explored is identical to the pre-bitset
// implementation (pinned by Exact.SeedCorpusNodeCounts in tests/test_ucp.cpp).
class Solver {
 public:
  Solver(const CoverProblem& problem, const BnbOptions& options)
      : p_(problem), opt_(options) {}

  CoverSolution run() {
    CoverSolution greedy = solve_greedy(p_);
    best_cost_ = greedy.cost;
    best_ = greedy.chosen;

    SearchState root{Bitset(p_.num_rows()), Bitset(p_.num_columns())};
    root.uncovered.set_all();
    root.available.set_all();

    std::vector<std::size_t> chosen;
    complete_ = true;
    branch(root, 0.0, chosen, 0);

    CoverSolution sol;
    sol.chosen = best_;
    std::sort(sol.chosen.begin(), sol.chosen.end());
    sol.cost = best_cost_;
    sol.optimal = complete_ && best_cost_ < kInf;
    sol.nodes_explored = nodes_;
    sol.deadline_expired = deadline_hit_;
    return sol;
  }

 private:
  /// Applies reductions in place; appends forced columns to `chosen` and adds
  /// their weight to `cost`. Returns false when the branch is infeasible.
  bool reduce(SearchState& s, double& cost, std::vector<std::size_t>& chosen,
              int depth) {
    bool changed = true;
    while (changed) {
      changed = false;

      // Essential columns (and infeasibility detection): scan uncovered
      // rows ascending, stop at the first dead or single-cover row.
      bool found_essential = true;
      while (found_essential) {
        found_essential = false;
        std::size_t essential_col = p_.num_columns();
        bool dead = false;
        s.uncovered.for_each_until([&](std::size_t r) {
          const Bitset& cov = p_.row_cover(r);
          const std::size_t count =
              cov.intersection_count_capped(s.available, 2);
          if (count == 0) {
            dead = true;
            return true;
          }
          if (count == 1) {
            essential_col = cov.first_and(s.available);
            return true;
          }
          return false;
        });
        if (dead) return false;
        if (essential_col != p_.num_columns()) {
          cost += p_.column(essential_col).weight;
          if (cost >= best_cost_) return false;
          chosen.push_back(essential_col);
          s.uncovered.subtract(p_.column(essential_col).rows);
          s.available.reset(essential_col);
          found_essential = true;
          changed = true;
          if (s.uncovered.none()) return true;
        }
      }

      // Row dominance: if every available column covering r2 also covers r1,
      // r1 is automatically satisfied when r2 is -> ignore r1.
      if (opt_.use_row_dominance) {
        std::vector<std::size_t> rows;
        s.uncovered.for_each([&](std::size_t r) { rows.push_back(r); });
        for (std::size_t r1 : rows) {
          if (!s.uncovered.test(r1)) continue;
          for (std::size_t r2 : rows) {
            if (r1 == r2 || !s.uncovered.test(r2) || !s.uncovered.test(r1)) {
              continue;
            }
            // cols(r2) & available subseteq cols(r1), word-parallel.
            if (p_.row_cover(r2).and_is_subset_of(s.available,
                                                  p_.row_cover(r1))) {
              s.uncovered.reset(r1);
              changed = true;
              break;
            }
          }
        }
      }

      // Column dominance on the remaining rows.
      if (opt_.use_column_dominance && depth <= opt_.column_dominance_max_depth) {
        for (std::size_t j1 = 0; j1 < p_.num_columns(); ++j1) {
          if (!s.available.test(j1)) continue;
          if (!p_.column(j1).rows.intersects(s.uncovered)) {
            s.available.reset(j1);  // useless column
            changed = true;
            continue;
          }
          for (std::size_t j2 = 0; j2 < p_.num_columns(); ++j2) {
            if (j1 == j2 || !s.available.test(j2)) continue;
            const double w1 = p_.column(j1).weight;
            const double w2 = p_.column(j2).weight;
            // Tie-break by index so two identical columns don't erase each
            // other.
            if (w2 > w1 || (w2 == w1 && j2 > j1)) continue;
            // (rows(j1) & uncovered) subseteq (rows(j2) & uncovered)?
            if (p_.column(j1).rows.and_is_subset_of(s.uncovered,
                                                    p_.column(j2).rows)) {
              s.available.reset(j1);
              changed = true;
              break;
            }
          }
        }
      }
    }
    return true;
  }

  double lower_bound(const SearchState& s) const {
    if (!opt_.use_mis_lower_bound) return 0.0;
    double bound = 0.0;
    Bitset blocked(p_.num_columns());
    s.uncovered.for_each([&](std::size_t r) {
      const Bitset& cov = p_.row_cover(r);
      const bool independent = !cov.intersects_masked(s.available, blocked);
      double cheapest = kInf;
      cov.for_each_and(s.available, [&](std::size_t j) {
        cheapest = std::min(cheapest, p_.column(j).weight);
      });
      if (independent && cheapest < kInf) {
        bound += cheapest;
        blocked.unite_and(cov, s.available);
      }
    });
    return bound;
  }

  void branch(SearchState s, double cost, std::vector<std::size_t> chosen,
              int depth) {
    if (nodes_ >= opt_.max_nodes) {
      complete_ = false;
      return;
    }
    if (opt_.deadline.expired()) {
      complete_ = false;
      deadline_hit_ = true;
      return;
    }
    ++nodes_;

    if (!reduce(s, cost, chosen, depth)) return;
    if (s.uncovered.none()) {
      if (cost < best_cost_) {
        best_cost_ = cost;
        best_ = chosen;
      }
      return;
    }
    if (cost + lower_bound(s) >= best_cost_) return;

    // Branch on the uncovered row with the fewest available columns.
    std::size_t best_row = p_.num_rows();
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    s.uncovered.for_each([&](std::size_t r) {
      const std::size_t count =
          p_.row_cover(r).intersection_count(s.available);
      if (count < best_count) {
        best_count = count;
        best_row = r;
      }
    });
    if (best_row == p_.num_rows()) return;

    std::vector<std::size_t> cols;
    p_.row_cover(best_row).for_each_and(
        s.available, [&](std::size_t j) { cols.push_back(j); });
    std::sort(cols.begin(), cols.end(), [&](std::size_t a, std::size_t b) {
      return p_.column(a).weight < p_.column(b).weight;
    });

    for (std::size_t j : cols) {
      SearchState child = s;
      child.uncovered.subtract(p_.column(j).rows);
      child.available.reset(j);
      std::vector<std::size_t> child_chosen = chosen;
      child_chosen.push_back(j);
      const double child_cost = cost + p_.column(j).weight;
      if (child_cost < best_cost_) {
        branch(std::move(child), child_cost, std::move(child_chosen),
               depth + 1);
      }
      // Sibling branches assume column j excluded: any cover using j was
      // just explored.
      s.available.reset(j);
    }
  }

  const CoverProblem& p_;
  const BnbOptions& opt_;
  double best_cost_{kInf};
  std::vector<std::size_t> best_;
  std::size_t nodes_{0};
  bool complete_{true};
  bool deadline_hit_{false};
};

}  // namespace

CoverSolution solve_exact(const CoverProblem& problem,
                          const BnbOptions& options) {
  CoverSolution sol;
  if (problem.num_rows() <=
      std::min(options.dense_dp_max_rows, kDenseDpMaxRows)) {
    if (!options.deadline.expired()) {
      sol = solve_dp(problem, options.deadline);
    } else {
      sol.deadline_expired = true;
    }
    if (!sol.optimal && sol.deadline_expired) {
      // DP abandoned (or never started) under the deadline: hand back the
      // greedy incumbent instead of nothing.
      const std::size_t dp_states = sol.nodes_explored;
      sol = solve_greedy(problem);
      sol.optimal = false;
      sol.deadline_expired = true;
      sol.nodes_explored = dp_states;
    }
  } else {
    Solver solver(problem, options);
    sol = solver.run();
  }
  sol.lower_bound =
      sol.optimal ? sol.cost : independent_rows_lower_bound(problem);
  return sol;
}

}  // namespace cdcs::ucp
