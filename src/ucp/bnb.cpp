#include "ucp/bnb.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "ucp/dp.hpp"
#include "ucp/greedy.hpp"
#include "ucp/lagrangian.hpp"

namespace cdcs::ucp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct SearchState {
  Bitset uncovered;  ///< rows still to cover
  Bitset available;  ///< columns still selectable
};

// The search itself is the classic include/exclude branch-and-bound; the
// reductions run word-parallel over the CoverProblem::row_cover transpose
// bitsets:
//   * essential columns: popcount(row_cover(r) & available) with an early
//     cap at 2, instead of scanning every column per uncovered row;
//   * row dominance:  cols(r2) subseteq cols(r1) is one masked-subset pass;
//   * column dominance: masked-subset over column row-sets, no temporaries;
//   * MIS lower bound: blocked-column tracking is bitset union/intersection,
//     and each row's cheapest available column comes from a per-row
//     weight-sorted list probed until the first available hit (built once in
//     the constructor), instead of rescanning the row's full column set.
// On top of the v1 machinery, v2 adds per-node subgradient Lagrangian bounds
// (warm-started from the parent's multipliers), reduced-cost column fixing
// against the incumbent, warm-start incumbent seeding, and an optional
// best-first frontier. With those features disabled the predicates, their
// visit order, and all tie-breaks are EXACTLY the v1 solver's, so
// nodes_explored is identical to the legacy implementation (pinned by
// Exact.SeedCorpusNodeCounts in tests/test_ucp.cpp).
// Search telemetry (all of it write-only: nothing below feeds back into the
// branching decisions, so traced and untraced runs explore the same tree):
//   * every kProgressPeriod nodes, counter events ucp.nodes / ucp.incumbent /
//     ucp.lower_bound chart the search's convergence over time in Perfetto;
//   * every incumbent improvement emits an instant event with the new cost;
//   * reduced-cost fixing victims and incumbent updates accumulate locally
//     and land in the metrics registry ONCE per run() (ucp.rc_fixed_columns,
//     ucp.incumbent_updates), keeping the per-node path free of shared
//     atomics. The sink is captured at construction so a solve emits to one
//     consistent sink even if the global pointer changes mid-search.
class Solver {
 public:
  static constexpr std::size_t kProgressPeriod = 1024;

  Solver(const CoverProblem& problem, const BnbOptions& options)
      : p_(problem), opt_(options), sink_(support::trace_sink()) {
    // Per-row columns sorted by (weight, index): the MIS bound's
    // cheapest-available probe and the Lagrangian MIS seeding both read it.
    row_cols_by_weight_.resize(p_.num_rows());
    for (std::size_t r = 0; r < p_.num_rows(); ++r) {
      std::vector<std::size_t>& cols = row_cols_by_weight_[r];
      p_.row_cover(r).for_each([&](std::size_t j) { cols.push_back(j); });
      std::stable_sort(cols.begin(), cols.end(),
                       [&](std::size_t a, std::size_t b) {
                         return p_.column(a).weight < p_.column(b).weight;
                       });
    }
  }

  CoverSolution run() {
    seed_incumbent();

    SearchState root{Bitset(p_.num_rows()), Bitset(p_.num_columns())};
    root.uncovered.set_all();
    root.available.set_all();

    // Caller-provided multipliers seed the ROOT subgradient ascent (a warm
    // re-solve of a near-identical instance converges in a few corrective
    // steps instead of the full cold ascent). Ignored unless sized to the
    // row count; empty reproduces the cold search tree node-for-node.
    std::vector<double> root_lambda;
    if (opt_.warm_multipliers.size() == p_.num_rows()) {
      root_lambda = opt_.warm_multipliers;
    }

    complete_ = true;
    if (opt_.search_order == SearchOrder::kBestFirst) {
      run_best_first(std::move(root), std::move(root_lambda));
    } else {
      branch(std::move(root), 0.0, {}, 0, std::move(root_lambda));
    }
    report_progress();  // final sample, so short solves chart too

    auto& registry = support::MetricsRegistry::global();
    registry.counter("ucp.rc_fixed_columns").add(rc_fixed_);
    registry.counter("ucp.incumbent_updates").add(incumbent_updates_);

    CoverSolution sol;
    sol.chosen = best_;
    std::sort(sol.chosen.begin(), sol.chosen.end());
    sol.cost = best_cost_;
    sol.optimal = complete_ && best_cost_ < kInf;
    sol.nodes_explored = nodes_;
    sol.deadline_expired = deadline_hit_;
    sol.root_multipliers = std::move(root_multipliers_);
    return sol;
  }

  /// Lower bound established at the root node (max of the MIS and Lagrangian
  /// bounds plus any essential-column cost); 0 when the root was never
  /// evaluated (e.g. instant deadline).
  double root_bound() const { return root_bound_; }

 private:
  void seed_incumbent() {
    const CoverSolution greedy = solve_greedy(p_);
    best_cost_ = greedy.cost;
    best_ = greedy.chosen;
    if (opt_.warm_start.empty()) return;
    std::vector<std::size_t> warm = opt_.warm_start;
    std::sort(warm.begin(), warm.end());
    warm.erase(std::unique(warm.begin(), warm.end()), warm.end());
    if (warm.empty() || warm.back() >= p_.num_columns()) return;
    if (!p_.covers_all(warm)) return;
    const double warm_cost = p_.cost_of(warm);
    if (warm_cost < best_cost_) {
      best_cost_ = warm_cost;
      best_ = std::move(warm);
    }
  }

  /// Applies reductions in place; appends forced columns to `chosen` and adds
  /// their weight to `cost`. Returns false when the branch is infeasible.
  bool reduce(SearchState& s, double& cost, std::vector<std::size_t>& chosen,
              int depth) {
    bool changed = true;
    while (changed) {
      changed = false;

      // Essential columns (and infeasibility detection): scan uncovered
      // rows ascending, stop at the first dead or single-cover row.
      bool found_essential = true;
      while (found_essential) {
        found_essential = false;
        std::size_t essential_col = p_.num_columns();
        bool dead = false;
        s.uncovered.for_each_until([&](std::size_t r) {
          const Bitset& cov = p_.row_cover(r);
          const std::size_t count =
              cov.intersection_count_capped(s.available, 2);
          if (count == 0) {
            dead = true;
            return true;
          }
          if (count == 1) {
            essential_col = cov.first_and(s.available);
            return true;
          }
          return false;
        });
        if (dead) return false;
        if (essential_col != p_.num_columns()) {
          cost += p_.column(essential_col).weight;
          if (cost >= best_cost_) return false;
          chosen.push_back(essential_col);
          s.uncovered.subtract(p_.column(essential_col).rows);
          s.available.reset(essential_col);
          found_essential = true;
          changed = true;
          if (s.uncovered.none()) return true;
        }
      }

      // Row dominance: if every available column covering r2 also covers r1,
      // r1 is automatically satisfied when r2 is -> ignore r1.
      if (opt_.use_row_dominance) {
        std::vector<std::size_t> rows;
        s.uncovered.for_each([&](std::size_t r) { rows.push_back(r); });
        for (std::size_t r1 : rows) {
          if (!s.uncovered.test(r1)) continue;
          for (std::size_t r2 : rows) {
            if (r1 == r2 || !s.uncovered.test(r2) || !s.uncovered.test(r1)) {
              continue;
            }
            // cols(r2) & available subseteq cols(r1), word-parallel.
            if (p_.row_cover(r2).and_is_subset_of(s.available,
                                                  p_.row_cover(r1))) {
              s.uncovered.reset(r1);
              changed = true;
              break;
            }
          }
        }
      }

      // Column dominance on the remaining rows.
      if (opt_.use_column_dominance && depth <= opt_.column_dominance_max_depth) {
        for (std::size_t j1 = 0; j1 < p_.num_columns(); ++j1) {
          if (!s.available.test(j1)) continue;
          if (!p_.column(j1).rows.intersects(s.uncovered)) {
            s.available.reset(j1);  // useless column
            changed = true;
            continue;
          }
          for (std::size_t j2 = 0; j2 < p_.num_columns(); ++j2) {
            if (j1 == j2 || !s.available.test(j2)) continue;
            const double w1 = p_.column(j1).weight;
            const double w2 = p_.column(j2).weight;
            // Tie-break by index so two identical columns don't erase each
            // other.
            if (w2 > w1 || (w2 == w1 && j2 > j1)) continue;
            // (rows(j1) & uncovered) subseteq (rows(j2) & uncovered)?
            if (p_.column(j1).rows.and_is_subset_of(s.uncovered,
                                                    p_.column(j2).rows)) {
              s.available.reset(j1);
              changed = true;
              break;
            }
          }
        }
      }
    }
    return true;
  }

  /// Cheapest available column weight for row r: probe the weight-sorted
  /// list until the first available entry. Value-identical to scanning the
  /// row's whole column set (the minimum of a set does not depend on the
  /// visit order), typically O(1) probes instead of O(covering columns).
  double cheapest_available(std::size_t r, const Bitset& available) const {
    for (std::size_t j : row_cols_by_weight_[r]) {
      if (available.test(j)) return p_.column(j).weight;
    }
    return kInf;
  }

  double lower_bound(const SearchState& s) const {
    if (!opt_.use_mis_lower_bound) return 0.0;
    double bound = 0.0;
    Bitset blocked(p_.num_columns());
    s.uncovered.for_each([&](std::size_t r) {
      const Bitset& cov = p_.row_cover(r);
      if (cov.intersects_masked(s.available, blocked)) return;
      const double cheapest = cheapest_available(r, s.available);
      if (cheapest < kInf) {
        bound += cheapest;
        blocked.unite_and(cov, s.available);
      }
    });
    return bound;
  }

  /// Node bound: MIS first (cheap; prunes most nodes), then the Lagrangian
  /// ascent only when MIS alone cannot prune. Returns the subproblem bound
  /// and fills `lagr`/`lagr_ran` for reduced-cost fixing and child
  /// warm-starting.
  double node_bound(const SearchState& s, double cost, int depth,
                    const std::vector<double>& lambda, LagrangianBound& lagr,
                    bool& lagr_ran) {
    double bound = lower_bound(s);
    lagr_ran = false;
    if (opt_.use_lagrangian_bound && cost + bound < best_cost_) {
      SubgradientOptions sopt;
      sopt.max_iterations = depth == 0 ? opt_.lagrangian_root_iterations
                                       : opt_.lagrangian_node_iterations;
      const std::vector<double>* warm = lambda.empty() ? nullptr : &lambda;
      lagr = subgradient_bound(p_, s.uncovered, s.available,
                               best_cost_ - cost, sopt, warm);
      bound = std::max(bound, lagr.bound);
      lagr_ran = true;
    }
    return bound;
  }

  /// Reduced-cost fixing: a cover through column j costs at least
  /// bound + max(0, rc_j) on top of `cost`; strictly past the incumbent the
  /// column can never improve on it, so it is dropped from this subtree
  /// (permanently, when called at the root). The comparison is strict with
  /// an absolute+relative tolerance so a column of an ALTERNATIVE optimal
  /// cover (bound + rc == incumbent) is never removed.
  void fix_columns(SearchState& s, double cost, const LagrangianBound& lagr) {
    const double budget = best_cost_ - cost;
    std::vector<std::size_t> victims;
    s.available.for_each([&](std::size_t j) {
      const double through =
          lagr.bound + std::max(0.0, lagr.reduced_costs[j]);
      if (through > budget * (1.0 + 1e-12) + 1e-9) victims.push_back(j);
    });
    for (std::size_t j : victims) s.available.reset(j);
    rc_fixed_ += victims.size();
  }

  /// New incumbent found: record it plus its telemetry (counted locally;
  /// flushed to the registry once per run()).
  void accept_incumbent(double cost, const std::vector<std::size_t>& chosen) {
    best_cost_ = cost;
    best_ = chosen;
    ++incumbent_updates_;
    if (sink_ != nullptr) {
      support::trace_instant("ucp.incumbent_improved", "ucp",
                             "{\"cost\":" + std::to_string(cost) +
                                 ",\"nodes\":" + std::to_string(nodes_) + "}");
    }
  }

  /// Emits the periodic search-progress counter tracks (node rate,
  /// incumbent, strongest root bound). Inert without a sink.
  void report_progress() {
    if (sink_ == nullptr) return;
    last_progress_nodes_ = nodes_;
    support::trace_counter("ucp.nodes", static_cast<double>(nodes_), "ucp");
    if (best_cost_ < kInf) {
      support::trace_counter("ucp.incumbent", best_cost_, "ucp");
    }
    if (root_bound_ > 0.0) {
      support::trace_counter("ucp.lower_bound", root_bound_, "ucp");
    }
  }

  void maybe_report_progress() {
    if (sink_ != nullptr && nodes_ - last_progress_nodes_ >= kProgressPeriod) {
      report_progress();
    }
  }

  bool should_fix(int depth) {
    if (!opt_.use_reduced_cost_fixing) return false;
    if (depth == 0 ||
        nodes_ - last_fix_nodes_ >= opt_.reduced_cost_fixing_period) {
      last_fix_nodes_ = nodes_;
      return true;
    }
    return false;
  }

  /// Branching row (fewest available columns) and its columns cheapest-first.
  std::vector<std::size_t> branch_columns(const SearchState& s) const {
    std::size_t best_row = p_.num_rows();
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    s.uncovered.for_each([&](std::size_t r) {
      const std::size_t count =
          p_.row_cover(r).intersection_count(s.available);
      if (count < best_count) {
        best_count = count;
        best_row = r;
      }
    });
    std::vector<std::size_t> cols;
    if (best_row == p_.num_rows()) return cols;
    p_.row_cover(best_row).for_each_and(
        s.available, [&](std::size_t j) { cols.push_back(j); });
    std::sort(cols.begin(), cols.end(), [&](std::size_t a, std::size_t b) {
      return p_.column(a).weight < p_.column(b).weight;
    });
    return cols;
  }

  void branch(SearchState s, double cost, std::vector<std::size_t> chosen,
              int depth, std::vector<double> lambda) {
    if (nodes_ >= opt_.max_nodes) {
      complete_ = false;
      return;
    }
    if (opt_.deadline.expired()) {
      complete_ = false;
      deadline_hit_ = true;
      return;
    }
    ++nodes_;
    maybe_report_progress();

    if (!reduce(s, cost, chosen, depth)) return;
    if (s.uncovered.none()) {
      if (cost < best_cost_) accept_incumbent(cost, chosen);
      if (depth == 0) root_bound_ = cost;
      return;
    }
    LagrangianBound lagr;
    bool lagr_ran = false;
    const double bound = node_bound(s, cost, depth, lambda, lagr, lagr_ran);
    if (depth == 0) {
      root_bound_ = cost + bound;
      if (lagr_ran) root_multipliers_ = lagr.multipliers;
    }
    if (cost + bound >= best_cost_) return;
    if (lagr_ran && should_fix(depth)) fix_columns(s, cost, lagr);

    const std::vector<std::size_t> cols = branch_columns(s);
    if (cols.empty()) return;
    const std::vector<double>& child_lambda =
        lagr_ran ? lagr.multipliers : lambda;

    for (std::size_t j : cols) {
      SearchState child = s;
      child.uncovered.subtract(p_.column(j).rows);
      child.available.reset(j);
      std::vector<std::size_t> child_chosen = chosen;
      child_chosen.push_back(j);
      const double child_cost = cost + p_.column(j).weight;
      if (child_cost < best_cost_) {
        branch(std::move(child), child_cost, std::move(child_chosen),
               depth + 1, child_lambda);
      }
      // Sibling branches assume column j excluded: any cover using j was
      // just explored.
      s.available.reset(j);
    }
  }

  // ---- Best-first frontier ------------------------------------------------

  struct FrontierNode {
    SearchState s;
    double cost;
    std::vector<std::size_t> chosen;
    std::vector<double> lambda;
    /// Admissible lower bound on any completion through this node
    /// (inherited from the parent's node bound at creation).
    double priority;
    int depth;
    std::uint64_t seq;  ///< creation order; deterministic tie-break
  };

  /// Min-heap order on (priority, seq): std::push_heap/pop_heap expect a
  /// "less" comparator for a max-heap, so invert both components.
  static bool frontier_after(const FrontierNode& a, const FrontierNode& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.seq > b.seq;
  }

  void run_best_first(SearchState root, std::vector<double> root_lambda) {
    std::vector<FrontierNode> heap;
    std::uint64_t next_seq = 0;
    heap.push_back(FrontierNode{std::move(root), 0.0, {},
                                std::move(root_lambda), 0.0, 0, next_seq++});

    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), frontier_after);
      FrontierNode node = std::move(heap.back());
      heap.pop_back();

      // Everything left on the frontier is at least as bad: the incumbent
      // is proven optimal and the search is complete.
      if (node.priority >= best_cost_) break;
      if (nodes_ >= opt_.max_nodes) {
        complete_ = false;
        break;
      }
      if (opt_.deadline.expired()) {
        complete_ = false;
        deadline_hit_ = true;
        break;
      }
      ++nodes_;
      maybe_report_progress();

      if (!reduce(node.s, node.cost, node.chosen, node.depth)) continue;
      if (node.s.uncovered.none()) {
        if (node.cost < best_cost_) accept_incumbent(node.cost, node.chosen);
        if (node.depth == 0) root_bound_ = node.cost;
        continue;
      }
      LagrangianBound lagr;
      bool lagr_ran = false;
      const double bound = node_bound(node.s, node.cost, node.depth,
                                      node.lambda, lagr, lagr_ran);
      if (node.depth == 0) {
        root_bound_ = node.cost + bound;
        if (lagr_ran) root_multipliers_ = lagr.multipliers;
      }
      if (node.cost + bound >= best_cost_) continue;
      if (lagr_ran && should_fix(node.depth)) {
        fix_columns(node.s, node.cost, lagr);
      }

      const std::vector<std::size_t> cols = branch_columns(node.s);
      const std::vector<double>& child_lambda =
          lagr_ran ? lagr.multipliers : node.lambda;
      for (std::size_t j : cols) {
        const double child_cost = node.cost + p_.column(j).weight;
        if (child_cost >= best_cost_) {
          node.s.available.reset(j);
          continue;
        }
        FrontierNode child;
        child.s = node.s;
        child.s.uncovered.subtract(p_.column(j).rows);
        child.s.available.reset(j);
        child.cost = child_cost;
        child.chosen = node.chosen;
        child.chosen.push_back(j);
        child.lambda = child_lambda;
        child.priority = std::max(node.cost + bound, child_cost);
        child.depth = node.depth + 1;
        child.seq = next_seq++;
        heap.push_back(std::move(child));
        std::push_heap(heap.begin(), heap.end(), frontier_after);
        // Sibling branches assume column j excluded.
        node.s.available.reset(j);
      }
      if (heap.size() > opt_.best_first_max_frontier) {
        complete_ = false;
        break;
      }
    }
  }

  const CoverProblem& p_;
  const BnbOptions& opt_;
  support::TraceSink* sink_;  ///< captured once; null = telemetry inert
  std::vector<std::vector<std::size_t>> row_cols_by_weight_;
  double best_cost_{kInf};
  std::vector<std::size_t> best_;
  std::size_t nodes_{0};
  std::size_t last_fix_nodes_{0};
  std::size_t last_progress_nodes_{0};
  std::size_t rc_fixed_{0};
  std::size_t incumbent_updates_{0};
  double root_bound_{0.0};
  std::vector<double> root_multipliers_;
  bool complete_{true};
  bool deadline_hit_{false};
};

/// Best incumbent available without branching: greedy, improved by the
/// caller's warm start when that is a valid, cheaper cover.
CoverSolution seeded_fallback(const CoverProblem& problem,
                              const BnbOptions& options) {
  CoverSolution sol = solve_greedy(problem);
  if (options.warm_start.empty()) return sol;
  std::vector<std::size_t> warm = options.warm_start;
  std::sort(warm.begin(), warm.end());
  warm.erase(std::unique(warm.begin(), warm.end()), warm.end());
  if (warm.empty() || warm.back() >= problem.num_columns()) return sol;
  if (!problem.covers_all(warm)) return sol;
  const double warm_cost = problem.cost_of(warm);
  if (warm_cost < sol.cost) {
    sol.chosen = std::move(warm);
    sol.cost = warm_cost;
  }
  return sol;
}

}  // namespace

CoverSolution solve_exact(const CoverProblem& problem,
                          const BnbOptions& options) {
  support::Span span("ucp.solve", "ucp",
                     "{\"rows\":" + std::to_string(problem.num_rows()) +
                         ",\"cols\":" + std::to_string(problem.num_columns()) +
                         "}");
  CoverSolution sol;
  double bnb_root_bound = 0.0;
  if (problem.num_rows() <=
      std::min(options.dense_dp_max_rows, kDenseDpMaxRows)) {
    support::Span dp_span("ucp.dense_dp", "ucp");
    support::MetricsRegistry::global().counter("ucp.dp_solves").add(1);
    if (!options.deadline.expired()) {
      sol = solve_dp(problem, options.deadline);
    } else {
      sol.deadline_expired = true;
    }
    if (!sol.optimal && sol.deadline_expired) {
      // DP abandoned (or never started) under the deadline: hand back the
      // seeded incumbent (greedy / warm start) instead of nothing.
      const std::size_t dp_states = sol.nodes_explored;
      sol = seeded_fallback(problem, options);
      sol.optimal = false;
      sol.deadline_expired = true;
      sol.nodes_explored = dp_states;
    }
  } else {
    Solver solver(problem, options);
    sol = solver.run();
    bnb_root_bound = solver.root_bound();
  }
  if (sol.optimal) {
    sol.lower_bound = sol.cost;
  } else {
    // Degraded exit: report the strongest proven root bound so callers get
    // an honest optimality gap -- the Lagrangian root bound when enabled
    // (computed during the search, or here when the search never evaluated
    // its root), else the independent-rows bound.
    double lb = independent_rows_lower_bound(problem);
    lb = std::max(lb, bnb_root_bound);
    if (options.use_lagrangian_bound && bnb_root_bound == 0.0) {
      SubgradientOptions sopt;
      sopt.max_iterations = options.lagrangian_root_iterations;
      lb = std::max(lb, lagrangian_root_bound(problem, sopt));
    }
    sol.lower_bound = lb;
  }
  return sol;
}

}  // namespace cdcs::ucp
