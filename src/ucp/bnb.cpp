#include "ucp/bnb.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "ucp/bnb_core.hpp"
#include "ucp/cover_solver.hpp"
#include "ucp/dp.hpp"
#include "ucp/lagrangian.hpp"
#include "ucp/parallel_bnb.hpp"

namespace cdcs::ucp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using detail::FrontierNode;
using detail::NodeEvaluator;
using detail::SearchState;
using detail::frontier_after;

// The search itself is the classic include/exclude branch-and-bound; the
// reductions, bounds, and branching rules live in ucp/bnb_core.hpp
// (NodeEvaluator), shared verbatim with the parallel engines
// (ucp/parallel_bnb.cpp) and running word-parallel over the
// CoverProblem::row_cover transpose bitsets:
//   * essential columns: popcount(row_cover(r) & available) with an early
//     cap at 2, instead of scanning every column per uncovered row;
//   * row dominance:  cols(r2) subseteq cols(r1) is one masked-subset pass;
//   * column dominance: masked-subset over column row-sets, no temporaries;
//   * MIS lower bound: blocked-column tracking is bitset union/intersection,
//     and each row's cheapest available column comes from a per-row
//     weight-sorted list probed until the first available hit (built once in
//     the evaluator), instead of rescanning the row's full column set.
// On top of the v1 machinery, v2 adds per-node subgradient Lagrangian bounds
// (warm-started from the parent's multipliers), reduced-cost column fixing
// against the incumbent, warm-start incumbent seeding, and an optional
// best-first frontier. With those features disabled the predicates, their
// visit order, and all tie-breaks are EXACTLY the v1 solver's, so
// nodes_explored is identical to the legacy implementation (pinned by
// Exact.SeedCorpusNodeCounts in tests/test_ucp.cpp).
// Search telemetry (all of it write-only: nothing below feeds back into the
// branching decisions, so traced and untraced runs explore the same tree):
//   * every kProgressPeriod nodes, counter events ucp.nodes / ucp.incumbent /
//     ucp.lower_bound chart the search's convergence over time in Perfetto;
//   * every incumbent improvement emits an instant event with the new cost;
//   * reduced-cost fixing victims and incumbent updates accumulate locally
//     and land in the metrics registry ONCE per run() (ucp.rc_fixed_columns,
//     ucp.incumbent_updates), keeping the per-node path free of shared
//     atomics. The sink is captured at construction so a solve emits to one
//     consistent sink even if the global pointer changes mid-search.
class Solver {
 public:
  static constexpr std::size_t kProgressPeriod = 1024;

  Solver(const CoverProblem& problem, const BnbOptions& options)
      : p_(problem), opt_(options), eval_(problem, options),
        sink_(support::trace_sink()) {}

  CoverSolution run() {
    best_cost_ = detail::seed_incumbent(p_, opt_, best_);

    SearchState root{Bitset(p_.num_rows()), Bitset(p_.num_columns())};
    root.uncovered.set_all();
    root.available.set_all();

    // Caller-provided multipliers seed the ROOT subgradient ascent (a warm
    // re-solve of a near-identical instance converges in a few corrective
    // steps instead of the full cold ascent). Ignored unless sized to the
    // row count; empty reproduces the cold search tree node-for-node.
    std::vector<double> root_lambda;
    if (opt_.warm_multipliers.size() == p_.num_rows()) {
      root_lambda = opt_.warm_multipliers;
    }

    complete_ = true;
    if (opt_.search_order == SearchOrder::kBestFirst) {
      run_best_first(std::move(root), std::move(root_lambda));
    } else {
      branch(std::move(root), 0.0, {}, 0, std::move(root_lambda));
    }
    report_progress();  // final sample, so short solves chart too

    auto& registry = support::MetricsRegistry::global();
    registry.counter("ucp.rc_fixed_columns").add(rc_fixed_);
    registry.counter("ucp.incumbent_updates").add(incumbent_updates_);

    CoverSolution sol;
    sol.chosen = best_;
    std::sort(sol.chosen.begin(), sol.chosen.end());
    sol.cost = best_cost_;
    sol.optimal = complete_ && best_cost_ < kInf;
    sol.nodes_explored = nodes_;
    sol.deadline_expired = deadline_hit_;
    sol.stop = stop_;
    sol.root_multipliers = std::move(root_multipliers_);
    return sol;
  }

  /// Lower bound established at the root node (max of the MIS and Lagrangian
  /// bounds plus any essential-column cost); 0 when the root was never
  /// evaluated (e.g. instant deadline).
  double root_bound() const { return root_bound_; }

 private:
  /// New incumbent found: record it plus its telemetry (counted locally;
  /// flushed to the registry once per run()).
  void accept_incumbent(double cost, const std::vector<std::size_t>& chosen) {
    best_cost_ = cost;
    best_ = chosen;
    ++incumbent_updates_;
    if (sink_ != nullptr) {
      support::trace_instant("ucp.incumbent_improved", "ucp",
                             "{\"cost\":" + std::to_string(cost) +
                                 ",\"nodes\":" + std::to_string(nodes_) + "}");
    }
    support::flight_record("incumbent",
                           "cost=" + std::to_string(cost) +
                               " nodes=" + std::to_string(nodes_));
  }

  /// Emits the periodic search-progress counter tracks (node rate,
  /// incumbent, strongest root bound). Inert without a sink.
  void report_progress() {
    if (sink_ == nullptr) return;
    last_progress_nodes_ = nodes_;
    support::trace_counter("ucp.nodes", static_cast<double>(nodes_), "ucp");
    if (best_cost_ < kInf) {
      support::trace_counter("ucp.incumbent", best_cost_, "ucp");
    }
    if (root_bound_ > 0.0) {
      support::trace_counter("ucp.lower_bound", root_bound_, "ucp");
    }
  }

  void maybe_report_progress() {
    if (sink_ != nullptr && nodes_ - last_progress_nodes_ >= kProgressPeriod) {
      report_progress();
    }
  }

  bool should_fix(int depth) {
    if (!opt_.use_reduced_cost_fixing) return false;
    if (depth == 0 ||
        nodes_ - last_fix_nodes_ >= opt_.reduced_cost_fixing_period) {
      last_fix_nodes_ = nodes_;
      return true;
    }
    return false;
  }

  void branch(SearchState s, double cost, std::vector<std::size_t> chosen,
              int depth, std::vector<double> lambda) {
    if (aborted_) return;  // a fired fault latches: no sibling continues
    if (nodes_ >= opt_.max_nodes) {
      complete_ = false;
      if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kNodeBudget;
      return;
    }
    if (opt_.deadline.expired()) {
      complete_ = false;
      deadline_hit_ = true;
      if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kDeadline;
      return;
    }
    // Same all-or-nothing kill site the parallel engines poll: a firing
    // abandons the search with the incumbent intact, never a torn cover.
    // Unarmed runs skip the consult entirely, so the pinned trees are
    // byte-identical with or without this check.
    if (opt_.fault_injector != nullptr &&
        opt_.fault_injector->should_fail(support::fault_sites::kUcpFrontier)) {
      complete_ = false;
      aborted_ = true;
      if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kAborted;
      return;
    }
    ++nodes_;
    maybe_report_progress();

    if (!eval_.reduce(s, cost, chosen, depth, best_cost_)) return;
    if (s.uncovered.none()) {
      if (cost < best_cost_) accept_incumbent(cost, chosen);
      if (depth == 0) root_bound_ = cost;
      return;
    }
    LagrangianBound lagr;
    bool lagr_ran = false;
    const double bound =
        eval_.node_bound(s, cost, depth, lambda, best_cost_, lagr, lagr_ran);
    if (depth == 0) {
      root_bound_ = cost + bound;
      if (lagr_ran) root_multipliers_ = lagr.multipliers;
    }
    if (cost + bound >= best_cost_) return;
    if (lagr_ran && should_fix(depth)) {
      rc_fixed_ += eval_.fix_columns(s, cost, best_cost_, lagr);
    }

    const std::vector<std::size_t> cols = eval_.branch_columns(s);
    if (cols.empty()) return;
    const std::vector<double>& child_lambda =
        lagr_ran ? lagr.multipliers : lambda;

    for (std::size_t j : cols) {
      SearchState child = s;
      child.uncovered.subtract(p_.column(j).rows);
      child.available.reset(j);
      std::vector<std::size_t> child_chosen = chosen;
      child_chosen.push_back(j);
      const double child_cost = cost + p_.column(j).weight;
      if (child_cost < best_cost_) {
        branch(std::move(child), child_cost, std::move(child_chosen),
               depth + 1, child_lambda);
      }
      // Sibling branches assume column j excluded: any cover using j was
      // just explored.
      s.available.reset(j);
    }
  }

  // ---- Best-first frontier ------------------------------------------------

  void run_best_first(SearchState root, std::vector<double> root_lambda) {
    std::vector<FrontierNode> heap;
    std::uint64_t next_seq = 0;
    heap.push_back(FrontierNode{std::move(root), 0.0, {},
                                std::move(root_lambda), 0.0, 0, next_seq++});

    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), frontier_after);
      FrontierNode node = std::move(heap.back());
      heap.pop_back();

      // Everything left on the frontier is at least as bad: the incumbent
      // is proven optimal and the search is complete.
      if (node.priority >= best_cost_) break;
      if (nodes_ >= opt_.max_nodes) {
        complete_ = false;
        if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kNodeBudget;
        break;
      }
      if (opt_.deadline.expired()) {
        complete_ = false;
        deadline_hit_ = true;
        if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kDeadline;
        break;
      }
      if (opt_.fault_injector != nullptr &&
          opt_.fault_injector->should_fail(
              support::fault_sites::kUcpFrontier)) {
        complete_ = false;
        if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kAborted;
        break;
      }
      ++nodes_;
      maybe_report_progress();

      if (!eval_.reduce(node.s, node.cost, node.chosen, node.depth,
                        best_cost_)) {
        continue;
      }
      if (node.s.uncovered.none()) {
        if (node.cost < best_cost_) accept_incumbent(node.cost, node.chosen);
        if (node.depth == 0) root_bound_ = node.cost;
        continue;
      }
      LagrangianBound lagr;
      bool lagr_ran = false;
      const double bound = eval_.node_bound(node.s, node.cost, node.depth,
                                            node.lambda, best_cost_, lagr,
                                            lagr_ran);
      if (node.depth == 0) {
        root_bound_ = node.cost + bound;
        if (lagr_ran) root_multipliers_ = lagr.multipliers;
      }
      if (node.cost + bound >= best_cost_) continue;
      if (lagr_ran && should_fix(node.depth)) {
        rc_fixed_ += eval_.fix_columns(node.s, node.cost, best_cost_, lagr);
      }

      const std::vector<std::size_t> cols = eval_.branch_columns(node.s);
      const std::vector<double>& child_lambda =
          lagr_ran ? lagr.multipliers : node.lambda;
      for (std::size_t j : cols) {
        const double child_cost = node.cost + p_.column(j).weight;
        if (child_cost >= best_cost_) {
          node.s.available.reset(j);
          continue;
        }
        FrontierNode child;
        child.s = node.s;
        child.s.uncovered.subtract(p_.column(j).rows);
        child.s.available.reset(j);
        child.cost = child_cost;
        child.chosen = node.chosen;
        child.chosen.push_back(j);
        child.lambda = child_lambda;
        child.priority = std::max(node.cost + bound, child_cost);
        child.depth = node.depth + 1;
        child.seq = next_seq++;
        heap.push_back(std::move(child));
        std::push_heap(heap.begin(), heap.end(), frontier_after);
        // Sibling branches assume column j excluded.
        node.s.available.reset(j);
      }
      if (heap.size() > opt_.best_first_max_frontier) {
        complete_ = false;
        if (stop_ == CoverStop::kCompleted) stop_ = CoverStop::kFrontierCap;
        break;
      }
    }
  }

  const CoverProblem& p_;
  const BnbOptions& opt_;
  NodeEvaluator eval_;
  support::TraceSink* sink_;  ///< captured once; null = telemetry inert
  double best_cost_{kInf};
  std::vector<std::size_t> best_;
  std::size_t nodes_{0};
  std::size_t last_fix_nodes_{0};
  std::size_t last_progress_nodes_{0};
  std::size_t rc_fixed_{0};
  std::size_t incumbent_updates_{0};
  double root_bound_{0.0};
  std::vector<double> root_multipliers_;
  bool complete_{true};
  bool deadline_hit_{false};
  bool aborted_{false};
  CoverStop stop_{CoverStop::kCompleted};
};

/// Best incumbent available without branching: greedy, improved by the
/// caller's warm start when that is a valid, cheaper cover.
CoverSolution seeded_fallback(const CoverProblem& problem,
                              const BnbOptions& options) {
  CoverSolution sol;
  sol.cost = detail::seed_incumbent(problem, options, sol.chosen);
  return sol;
}

}  // namespace

namespace detail {

CoverSolution solve_exact_auto(const CoverProblem& problem,
                               const BnbOptions& options) {
  CoverSolution sol;
  double bnb_root_bound = 0.0;
  if (problem.num_rows() <=
      std::min(options.dense_dp_max_rows, kDenseDpMaxRows)) {
    support::Span dp_span("ucp.dense_dp", "ucp");
    support::MetricsRegistry::global().counter("ucp.dp_solves").add(1);
    if (!options.deadline.expired()) {
      sol = solve_dp(problem, options.deadline, options.max_nodes,
                     options.fault_injector);
    } else {
      sol.deadline_expired = true;
      sol.stop = CoverStop::kDeadline;
    }
    if (!sol.optimal && sol.stop != CoverStop::kCompleted) {
      // DP abandoned (or never started) under the deadline, node budget, or
      // an injected fault: hand back the seeded incumbent (greedy / warm
      // start) instead of nothing, keeping the stop reason.
      const std::size_t dp_states = sol.nodes_explored;
      const CoverStop stop = sol.stop;
      const bool deadline_hit = sol.deadline_expired;
      sol = seeded_fallback(problem, options);
      sol.optimal = false;
      sol.deadline_expired = deadline_hit;
      sol.stop = stop;
      sol.nodes_explored = dp_states;
    }
    sol.backend = "dense_dp";
  } else if (options.mode != BnbMode::kSerial) {
    sol = solve_parallel_bnb(problem, options, &bnb_root_bound);
    sol.backend = "parallel_bnb";
  } else {
    Solver solver(problem, options);
    sol = solver.run();
    bnb_root_bound = solver.root_bound();
    // The v1 reference configuration (DFS, Lagrangian machinery off) is the
    // pinned legacy tree; anything else is the v2 solver.
    sol.backend = (options.search_order == SearchOrder::kDepthFirst &&
                   !options.use_lagrangian_bound &&
                   !options.use_reduced_cost_fixing)
                      ? "dfs_v1"
                      : "bnb_v2";
  }
  if (sol.optimal) {
    sol.lower_bound = sol.cost;
  } else {
    // Degraded exit: report the strongest proven root bound so callers get
    // an honest optimality gap -- the Lagrangian root bound when enabled
    // (computed during the search, or here when the search never evaluated
    // its root), else the independent-rows bound.
    double lb = independent_rows_lower_bound(problem);
    lb = std::max(lb, bnb_root_bound);
    if (options.use_lagrangian_bound && bnb_root_bound == 0.0) {
      SubgradientOptions sopt;
      sopt.max_iterations = options.lagrangian_root_iterations;
      lb = std::max(lb, lagrangian_root_bound(problem, sopt));
    }
    sol.lower_bound = lb;
  }
  return sol;
}

}  // namespace detail

CoverSolution solve_exact(const CoverProblem& problem,
                          const BnbOptions& options) {
  support::Span span("ucp.solve", "ucp",
                     "{\"rows\":" + std::to_string(problem.num_rows()) +
                         ",\"cols\":" + std::to_string(problem.num_columns()) +
                         "}");
  CoverSolution sol;
  if (options.backend.empty()) {
    sol = detail::solve_exact_auto(problem, options);
  } else if (options.backend == "portfolio") {
    sol = solve_portfolio(problem, options);
  } else {
    const std::string name =
        options.backend == "heuristic"
            ? std::string(select_cover_backend(problem.num_rows(),
                                               problem.num_columns(),
                                               cover_density(problem)))
            : options.backend;
    const CoverSolver* solver = find_cover_solver(name);
    if (solver == nullptr) {
      throw std::invalid_argument("unknown cover-solver backend '" + name +
                                  "' (registered: " +
                                  registered_cover_solver_list() + ")");
    }
    if (!solver->applicable(problem)) {
      throw std::invalid_argument(
          "cover-solver backend '" + name + "' cannot handle a " +
          std::to_string(problem.num_rows()) + "x" +
          std::to_string(problem.num_columns()) + " instance");
    }
    sol = solver->solve(problem, options);
    sol.backend = name;
  }
  sol.rows = problem.num_rows();
  sol.cols = problem.num_columns();
  sol.density = cover_density(problem);
  auto& registry = support::MetricsRegistry::global();
  registry.counter("ucp.backend." + sol.backend + ".solves").add(1);
  registry.counter("ucp.backend." + sol.backend + ".nodes")
      .add(sol.nodes_explored);
  for (const PortfolioMember& m : sol.portfolio) {
    std::string key = "ucp.portfolio.";
    key.append(to_string(m.outcome));
    key += '.';
    key += m.backend;
    registry.counter(key).add(1);
  }
  return sol;
}

}  // namespace cdcs::ucp
