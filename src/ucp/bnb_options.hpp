// Configuration for the exact weighted-UCP branch-and-bound (ucp/bnb.hpp),
// split out so callers that only CARRY solver options (SynthesisOptions,
// session engines, CLI flag parsing) need not see the solver itself.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/deadline.hpp"

namespace cdcs::support {
class FaultInjector;
class ThreadPool;
}  // namespace cdcs::support

namespace cdcs::ucp {

/// Node-expansion order of the branch-and-bound.
enum class SearchOrder {
  /// Classic recursive include/exclude DFS -- the reference tree whose node
  /// counts are pinned for determinism.
  kDepthFirst,
  /// Explicit frontier ordered by node lower bound (ties by creation order,
  /// so still fully deterministic). Reaches the optimum sooner on wide
  /// trees; proves optimality the moment the best frontier bound meets the
  /// incumbent. Costs memory proportional to the frontier.
  kBestFirst,
};

/// Which branch-and-bound engine runs the search (docs/performance.md sec 8).
/// Every mode proves the same optimal cover cost; they differ in the tree
/// they explore and in what is deterministic about it.
enum class BnbMode {
  /// The single-threaded reference solver; `search_order` picks its tree.
  /// The only mode whose node counts are pinned against the v1 solver.
  kSerial,
  /// Round-synchronous parallel best-first: each round drains the top
  /// `rounds_batch_size` frontier nodes, expands them as pure functions of
  /// the round-start incumbent on the worker pool, and merges children in
  /// (priority, seq) order. The explored-node set, final cost, and
  /// CoverSolution::explored_fingerprint are bit-identical at every thread
  /// count (pinned at 1/2/8 by ParallelBnbDeterminism tests).
  kRounds,
  /// Asynchronous workers over a shared frontier with an atomic monotone
  /// incumbent: maximum speed, same proven-optimal cost, but the explored
  /// tree (and nodes_explored) varies run to run.
  kFreeRun,
};

struct BnbOptions {
  std::size_t max_nodes = 10'000'000;
  /// Wall-clock budget (plus cooperative cancellation); polled once per
  /// branch node and periodically inside the dense DP. On expiry the best
  /// incumbent so far is returned with `optimal = false` and
  /// `deadline_expired = true`.
  support::Deadline deadline;
  bool use_row_dominance = true;
  bool use_column_dominance = true;
  bool use_mis_lower_bound = true;
  /// Column dominance is O(columns^2); beyond this depth it is skipped.
  int column_dominance_max_depth = 4;

  /// Subgradient Lagrangian node bounds (dominate the MIS bound; see
  /// ucp/lagrangian.hpp). Disabling this and `use_reduced_cost_fixing`
  /// reproduces the v1 search tree exactly.
  bool use_lagrangian_bound = true;
  /// Subgradient iterations at the root (where the bound pays for the whole
  /// tree) and at interior nodes (warm-started from the parent, so a few
  /// corrective steps suffice).
  std::size_t lagrangian_root_iterations = 120;
  std::size_t lagrangian_node_iterations = 8;

  /// Permanently drop columns whose reduced cost pushes them strictly past
  /// the incumbent (requires the Lagrangian bound). Applied at the root and
  /// then every `reduced_cost_fixing_period` nodes. Never removes a column
  /// belonging to ANY optimal cover (the test is strict).
  bool use_reduced_cost_fixing = true;
  std::size_t reduced_cost_fixing_period = 64;

  /// Node-expansion order; kDepthFirst is the pinned reference tree.
  /// Ignored by the parallel modes, which are always best-first.
  SearchOrder search_order = SearchOrder::kDepthFirst;
  /// Frontier cap for kBestFirst and the parallel modes; beyond it the
  /// search stops and returns the incumbent (optimal = false) with
  /// CoverSolution::stop = CoverStop::kFrontierCap.
  std::size_t best_first_max_frontier = 1'000'000;

  /// Which engine runs the search. kSerial is the pinned reference; the
  /// parallel modes fan node expansion over a thread pool (see `threads`
  /// and `pool`).
  BnbMode mode = BnbMode::kSerial;
  /// Worker count for the parallel modes; <= 0 means all hardware threads.
  /// A value of 1 still runs the parallel engine (on the calling thread),
  /// which the determinism tests exploit to pin thread-count invariance.
  int threads = 0;
  /// Optional borrowed pool for the parallel modes (not owned; must outlive
  /// the solve). When null and `threads` resolves above 1 the solver makes
  /// its own. run_pipeline mounts one shared pool here and in
  /// SynthesisOptions::pool so `--threads` and `--ucp-threads` share it.
  support::ThreadPool* pool = nullptr;
  /// Nodes drained from the frontier per round in kRounds mode. Part of
  /// the deterministic contract: changing it changes the explored tree
  /// (it is folded into the pipeline's cover signature).
  std::size_t rounds_batch_size = 16;
  /// Optional borrowed fault injector (not owned). Every backend consults
  /// the "ucp.frontier" site -- the serial solvers per branch node, the
  /// dense DP at entry and each deadline poll, the hitting-set loop once
  /// per iteration, the parallel engines per round/dequeue -- and aborts
  /// the solve (all-or-nothing: incumbent intact, optimal = false,
  /// stop = kAborted) when it fires.
  support::FaultInjector* fault_injector = nullptr;

  /// Optional feasible cover (column indices) seeding the incumbent on top
  /// of the built-in greedy seed; the cheaper of the two wins. Ignored if it
  /// does not cover every row. The synthesizer passes the point-to-point
  /// singleton cover here so the solver starts with the anytime ladder's
  /// last-resort upper bound already in hand.
  std::vector<std::size_t> warm_start;

  /// Optional Lagrangian multipliers (one per row) seeding the ROOT
  /// subgradient ascent, e.g. the multipliers a previous solve of a
  /// near-identical problem converged to (CoverSolution::root_multipliers).
  /// Ignored unless the size matches the row count; ignored by the dense
  /// DP path. Empty (the default) reproduces the cold-start search tree
  /// node-for-node, which determinism tests pin.
  std::vector<double> warm_multipliers;

  /// Instances with at most this many rows are solved by the exact dense
  /// subset DP (ucp/dp.hpp) instead of branching -- orders of magnitude
  /// faster on the narrow-and-wide matrices synthesis produces. Set to 0 to
  /// force branch-and-bound.
  std::size_t dense_dp_max_rows = 20;

  /// Cover-solver backend selection (ucp/cover_solver.hpp). Empty (the
  /// default) keeps solve_exact's legacy automatic dispatch -- dense DP
  /// below the row cutoff, then the engine `mode` picks -- which is what
  /// every pinned node count and fingerprint is recorded against. A
  /// registered name ("dense_dp", "dfs_v1", "bnb_v2", "parallel_bnb",
  /// "hitting_set") forces that backend; "portfolio" races the racing
  /// backends on `pool` and returns the fixed-priority winner;
  /// "heuristic" picks one backend per instance from its
  /// rows x cols x density features. Unknown names throw
  /// std::invalid_argument.
  std::string backend;
};

}  // namespace cdcs::ucp
