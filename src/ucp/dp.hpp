// Exact dense dynamic program for weighted UCP with few rows.
//
// Covering instances produced by communication synthesis have one row per
// constraint arc -- typically well under 24 -- while the column count can
// reach the thousands (every surviving merging). Branch-and-bound degrades
// badly there (hundreds of near-equal columns per row explode the branching
// factor), but the row-subset state space is tiny: over masks m of still-
// uncovered rows,
//
//     dp[m] = min over columns c covering the lowest row of m of
//             dp[m \ rows(c)] + weight(c)
//
// runs in O(2^R * avg-columns-per-row) time and O(2^R) space -- milliseconds
// for R <= 20 regardless of column count. solve_exact() dispatches here
// automatically below the row threshold (see BnbOptions::dense_dp_max_rows).
#pragma once

#include <cstddef>
#include <limits>

#include "support/deadline.hpp"
#include "ucp/cover.hpp"

namespace cdcs::support {
class FaultInjector;
}  // namespace cdcs::support

namespace cdcs::ucp {

/// Hard cap on rows (memory: 3 * 2^R words). solve_dp refuses above it.
inline constexpr std::size_t kDenseDpMaxRows = 24;

/// Exact minimum-weight cover via subset DP. Throws std::invalid_argument
/// when num_rows exceeds kDenseDpMaxRows. Infeasible -> cost = +infinity,
/// empty chosen, optimal = false. `nodes_explored` counts DP states.
/// The deadline is polled every 4096 states; on expiry the DP abandons the
/// table and returns an empty solution flagged `deadline_expired` (the
/// caller falls back to the greedy incumbent).
/// `max_states` is the DP's share of the caller's node budget: a table
/// larger than it is refused up front (stop = kNodeBudget, zero work done)
/// rather than half-filled -- a partial DP table yields no incumbent, so
/// there is nothing useful to salvage mid-run. `injector` (borrowed, may be
/// null) is consulted at the "ucp.frontier" site once at the start and at
/// every deadline poll; a firing abandons the table with stop = kAborted.
CoverSolution solve_dp(
    const CoverProblem& problem, const support::Deadline& deadline = {},
    std::size_t max_states = std::numeric_limits<std::size_t>::max(),
    support::FaultInjector* injector = nullptr);

}  // namespace cdcs::ucp
