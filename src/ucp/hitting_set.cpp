#include "ucp/hitting_set.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/fault.hpp"
#include "ucp/bitset.hpp"
#include "ucp/bnb.hpp"
#include "ucp/bnb_core.hpp"
#include "ucp/dp.hpp"

namespace cdcs::ucp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The uncovered row with the fewest covering columns (the most binding
/// lazily generated constraint; ties to the lowest index). `uncovered` must
/// be nonempty.
std::size_t most_binding_row(const CoverProblem& p, const Bitset& uncovered) {
  std::size_t best_row = p.num_rows();
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  uncovered.for_each([&](std::size_t r) {
    const std::size_t c = p.row_cover(r).count();
    if (c < best_count) {
      best_count = c;
      best_row = r;
    }
  });
  return best_row;
}

/// Greedily extends `chosen` (already covering `covered`) into a full cover
/// by the classic weight / newly-covered ratio rule (strict improvement,
/// ties to the lowest column index). Returns false when stuck, which cannot
/// happen on a feasible problem.
bool greedy_complete(const CoverProblem& p, std::vector<std::size_t>& chosen,
                     Bitset& covered, double& cost) {
  const std::size_t rows = p.num_rows();
  while (covered.count() < rows) {
    std::size_t best_col = p.num_columns();
    double best_ratio = kInf;
    for (std::size_t j = 0; j < p.num_columns(); ++j) {
      const Column& c = p.column(j);
      const std::size_t gain = c.rows.count() - covered.intersection_count(c.rows);
      if (gain == 0) continue;
      const double ratio = c.weight / static_cast<double>(gain);
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_col = j;
      }
    }
    if (best_col == p.num_columns()) return false;
    chosen.push_back(best_col);
    covered.unite(p.column(best_col).rows);
    cost += p.column(best_col).weight;
  }
  return true;
}

}  // namespace

CoverSolution solve_hitting_set(const CoverProblem& problem,
                                const BnbOptions& options) {
  CoverSolution sol;
  const std::size_t rows = problem.num_rows();
  const std::size_t cols = problem.num_columns();
  if (rows == 0) {
    sol.optimal = true;
    return sol;
  }
  if (!problem.feasible()) {
    // Same shape as the branch-and-bound's infeasible exit: +inf cost, no
    // columns, search "completed" without a proof.
    sol.cost = kInf;
    sol.lower_bound = independent_rows_lower_bound(problem);
    return sol;
  }

  // Anytime incumbent: greedy cover, improved by the caller's warm start.
  std::vector<std::size_t> best;
  double best_cost = detail::seed_incumbent(problem, options, best);

  double core_bound = 0.0;      // last proven core optimum (monotone)
  std::size_t nodes = 0;        // sub-solve nodes, >= 1 per iteration
  CoverStop stop = CoverStop::kCompleted;
  bool optimal = false;

  // Start the core at the most binding row overall rather than empty; the
  // first sub-solve then already generates a nontrivial bound.
  Bitset core(rows);
  {
    Bitset all(rows);
    all.set_all();
    core.set(most_binding_row(problem, all));
  }

  while (true) {
    if (options.fault_injector != nullptr &&
        options.fault_injector->should_fail(support::fault_sites::kUcpFrontier)) {
      stop = CoverStop::kAborted;
      break;
    }
    if (options.deadline.expired()) {
      stop = CoverStop::kDeadline;
      break;
    }
    if (nodes >= options.max_nodes) {
      stop = CoverStop::kNodeBudget;
      break;
    }
    if (core.count() > options.best_first_max_frontier) {
      // The core IS this solver's frontier: one lazily generated constraint
      // per entry, so the best-first frontier cap bounds it too.
      stop = CoverStop::kFrontierCap;
      break;
    }

    // Core-restricted sub-instance: core rows reindexed densely, columns
    // restricted to them (empty restrictions dropped), solved EXACTLY
    // through the ordinary automatic dispatch (dense DP for small cores,
    // serial best-first beyond).
    std::vector<std::size_t> core_rows;
    core.for_each([&](std::size_t r) { core_rows.push_back(r); });
    CoverProblem sub(core_rows.size());
    std::vector<std::size_t> sub_to_full;
    for (std::size_t j = 0; j < cols; ++j) {
      const Column& c = problem.column(j);
      std::vector<std::size_t> sub_rows;
      for (std::size_t k = 0; k < core_rows.size(); ++k) {
        if (c.rows.test(core_rows[k])) sub_rows.push_back(k);
      }
      if (sub_rows.empty()) continue;
      sub.add_column(sub_rows, c.weight);
      sub_to_full.push_back(j);
    }

    BnbOptions sub_opt = options;
    sub_opt.backend.clear();
    sub_opt.fault_injector = nullptr;  // consulted once per iteration above
    sub_opt.mode = BnbMode::kSerial;
    sub_opt.search_order = SearchOrder::kBestFirst;
    sub_opt.threads = 1;
    sub_opt.pool = nullptr;
    sub_opt.dense_dp_max_rows = kDenseDpMaxRows;
    sub_opt.warm_start.clear();
    sub_opt.warm_multipliers.clear();
    sub_opt.max_nodes = options.max_nodes - nodes;
    const CoverSolution core_sol = detail::solve_exact_auto(sub, sub_opt);
    nodes += std::max<std::size_t>(core_sol.nodes_explored, 1);
    if (!core_sol.optimal) {
      // The sub-solve hit a budget; its stop reason is ours.
      stop = core_sol.stop;
      break;
    }
    core_bound = std::max(core_bound, core_sol.cost);

    // Map the core optimum back to full column indices and test the one
    // termination condition: does it already cover every row?
    std::vector<std::size_t> chosen;
    chosen.reserve(core_sol.chosen.size());
    Bitset covered(rows);
    for (std::size_t sj : core_sol.chosen) {
      const std::size_t j = sub_to_full[sj];
      chosen.push_back(j);
      covered.unite(problem.column(j).rows);
    }
    if (covered.count() == rows) {
      // Cost equals the core lower bound: proven optimal.
      std::sort(chosen.begin(), chosen.end());
      best = std::move(chosen);
      best_cost = core_sol.cost;
      optimal = true;
      break;
    }

    // Not a full cover yet: greedily complete it for the anytime incumbent,
    // then add the most binding uncovered row to the core and iterate.
    Bitset uncovered(rows);
    uncovered.set_all();
    uncovered.subtract(covered);
    const std::size_t next_row = most_binding_row(problem, uncovered);

    double completed_cost = core_sol.cost;
    if (greedy_complete(problem, chosen, covered, completed_cost) &&
        completed_cost < best_cost) {
      std::sort(chosen.begin(), chosen.end());
      best = std::move(chosen);
      best_cost = completed_cost;
    }

    core.set(next_row);
  }

  sol.chosen = std::move(best);
  std::sort(sol.chosen.begin(), sol.chosen.end());
  sol.cost = best_cost;
  sol.optimal = optimal;
  sol.nodes_explored = nodes;
  sol.stop = stop;
  sol.deadline_expired = stop == CoverStop::kDeadline;
  if (optimal) {
    sol.lower_bound = sol.cost;
  } else {
    // Honest gap on budgeted exits: the strongest of the last proven core
    // bound and the root bounds the branch-and-bound machinery derives
    // (NodeEvaluator's MIS bound, independent-rows fallback).
    double lb = std::max(core_bound, independent_rows_lower_bound(problem));
    detail::SearchState root;
    root.uncovered = Bitset(rows);
    root.uncovered.set_all();
    root.available = Bitset(cols);
    root.available.set_all();
    const detail::NodeEvaluator evaluator(problem, options);
    lb = std::max(lb, evaluator.lower_bound(root));
    sol.lower_bound = lb;
  }
  return sol;
}

}  // namespace cdcs::ucp
