#include "ucp/cover.hpp"

#include <stdexcept>

namespace cdcs::ucp {

std::size_t CoverProblem::add_column(const std::vector<std::size_t>& rows,
                                     double weight) {
  if (weight < 0.0) {
    throw std::invalid_argument("CoverProblem: negative column weight");
  }
  Column col{Bitset(num_rows_), weight};
  for (std::size_t r : rows) {
    if (r >= num_rows_) {
      throw std::out_of_range("CoverProblem: row index out of range");
    }
    col.rows.set(r);
  }
  if (col.rows.none()) {
    throw std::invalid_argument("CoverProblem: column covers no rows");
  }
  columns_.push_back(std::move(col));
  return columns_.size() - 1;
}

bool CoverProblem::feasible() const {
  Bitset covered(num_rows_);
  for (const Column& c : columns_) covered.unite(c.rows);
  return covered.count() == num_rows_;
}

double CoverProblem::cost_of(const std::vector<std::size_t>& chosen) const {
  double total = 0.0;
  for (std::size_t j : chosen) total += columns_.at(j).weight;
  return total;
}

bool CoverProblem::covers_all(const std::vector<std::size_t>& chosen) const {
  Bitset covered(num_rows_);
  for (std::size_t j : chosen) covered.unite(columns_.at(j).rows);
  return covered.count() == num_rows_;
}

}  // namespace cdcs::ucp
