#include "ucp/cover.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace cdcs::ucp {

std::string_view to_string(CoverStop stop) {
  switch (stop) {
    case CoverStop::kCompleted:
      return "completed";
    case CoverStop::kNodeBudget:
      return "node_budget";
    case CoverStop::kFrontierCap:
      return "frontier_cap";
    case CoverStop::kDeadline:
      return "deadline";
    case CoverStop::kAborted:
      return "aborted";
  }
  return "unknown";
}

std::size_t CoverProblem::add_column(const std::vector<std::size_t>& rows,
                                     double weight) {
  if (weight < 0.0) {
    throw std::invalid_argument("CoverProblem: negative column weight");
  }
  Column col{Bitset(num_rows_), weight};
  for (std::size_t r : rows) {
    if (r >= num_rows_) {
      throw std::out_of_range("CoverProblem: row index out of range");
    }
    col.rows.set(r);
  }
  if (col.rows.none()) {
    throw std::invalid_argument("CoverProblem: column covers no rows");
  }
  columns_.push_back(std::move(col));
  row_cover_valid_ = false;
  return columns_.size() - 1;
}

const Bitset& CoverProblem::row_cover(std::size_t r) const {
  if (!row_cover_valid_) {
    row_cover_.assign(num_rows_, Bitset(columns_.size()));
    for (std::size_t j = 0; j < columns_.size(); ++j) {
      columns_[j].rows.for_each(
          [&](std::size_t row) { row_cover_[row].set(j); });
    }
    row_cover_valid_ = true;
  }
  return row_cover_.at(r);
}

bool CoverProblem::feasible() const {
  Bitset covered(num_rows_);
  for (const Column& c : columns_) covered.unite(c.rows);
  return covered.count() == num_rows_;
}

double CoverProblem::cost_of(const std::vector<std::size_t>& chosen) const {
  double total = 0.0;
  for (std::size_t j : chosen) total += columns_.at(j).weight;
  return total;
}

bool CoverProblem::covers_all(const std::vector<std::size_t>& chosen) const {
  Bitset covered(num_rows_);
  for (std::size_t j : chosen) covered.unite(columns_.at(j).rows);
  return covered.count() == num_rows_;
}

double optimality_gap(double achieved, double lower_bound) {
  if (lower_bound <= 0.0 || achieved <= lower_bound) return 0.0;
  return (achieved - lower_bound) / lower_bound;
}

double independent_rows_lower_bound(const CoverProblem& problem) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  double bound = 0.0;
  std::vector<char> blocked(problem.num_columns(), 0);
  for (std::size_t r = 0; r < problem.num_rows(); ++r) {
    double cheapest = kInf;
    bool independent = true;
    for (std::size_t j = 0; j < problem.num_columns(); ++j) {
      if (!problem.column(j).rows.test(r)) continue;
      if (blocked[j]) independent = false;
      cheapest = std::min(cheapest, problem.column(j).weight);
    }
    if (independent && cheapest < kInf) {
      bound += cheapest;
      for (std::size_t j = 0; j < problem.num_columns(); ++j) {
        if (problem.column(j).rows.test(r)) blocked[j] = 1;
      }
    }
  }
  return bound;
}

}  // namespace cdcs::ucp
