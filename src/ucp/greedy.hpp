// Greedy weighted set-cover heuristic: repeatedly picks the column with the
// best weight-per-newly-covered-row ratio. Classic ln(n)-approximation; used
// as the initial upper bound for the exact branch-and-bound and as the
// heuristic baseline in the UCP benchmark.
#pragma once

#include "ucp/cover.hpp"

namespace cdcs::ucp {

/// Returns a feasible cover, or an empty solution with cost = +infinity when
/// the problem itself is infeasible. `optimal` is always false.
CoverSolution solve_greedy(const CoverProblem& problem);

}  // namespace cdcs::ucp
