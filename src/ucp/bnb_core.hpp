// Shared node-level machinery of the exact UCP branch-and-bound, split out
// of ucp/bnb.cpp so the serial solver (bnb.cpp) and the parallel engines
// (parallel_bnb.cpp) expand nodes through ONE implementation of the
// reductions, bounds, and branching rules. Everything here is logic-identical
// to the pre-split solver -- the pinned v1 node counts depend on it -- with
// the sole mechanical change that the incumbent cost is an explicit
// parameter instead of solver state, which is what lets many threads share a
// const NodeEvaluator.
//
// Internal header: not installed, not part of the public ucp API surface.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "ucp/bitset.hpp"
#include "ucp/bnb_options.hpp"
#include "ucp/cover.hpp"
#include "ucp/lagrangian.hpp"

namespace cdcs::ucp::detail {

inline constexpr double kInfCost = std::numeric_limits<double>::infinity();

struct SearchState {
  Bitset uncovered;  ///< rows still to cover
  Bitset available;  ///< columns still selectable
};

/// A frontier entry of the best-first search (serial kBestFirst and both
/// parallel modes share the representation).
struct FrontierNode {
  SearchState s;
  double cost;
  std::vector<std::size_t> chosen;
  std::vector<double> lambda;
  /// Admissible lower bound on any completion through this node
  /// (inherited from the parent's node bound at creation).
  double priority;
  int depth;
  std::uint64_t seq;  ///< creation order; deterministic tie-break
};

/// Min-heap order on (priority, seq): std::push_heap/pop_heap expect a
/// "less" comparator for a max-heap, so invert both components.
inline bool frontier_after(const FrontierNode& a, const FrontierNode& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.seq > b.seq;
}

// Stateless-per-node view of the search machinery. Construction is NOT
// thread-safe (it warms CoverProblem's lazy row_cover transpose); every
// method after construction is const and safe to call from many threads at
// once, each on its own SearchState.
class NodeEvaluator {
 public:
  NodeEvaluator(const CoverProblem& problem, const BnbOptions& options);

  /// Applies reductions in place; appends forced columns to `chosen` and
  /// adds their weight to `cost`. Returns false when the branch is
  /// infeasible or its forced cost already meets `best_cost`.
  bool reduce(SearchState& s, double& cost, std::vector<std::size_t>& chosen,
              int depth, double best_cost) const;

  /// Cheapest available column weight for row r (kInfCost when none).
  double cheapest_available(std::size_t r, const Bitset& available) const;

  /// MIS lower bound over the remaining subproblem (0 when disabled).
  double lower_bound(const SearchState& s) const;

  /// Node bound: MIS first (cheap; prunes most nodes), then the Lagrangian
  /// ascent only when MIS alone cannot prune. Returns the subproblem bound
  /// and fills `lagr`/`lagr_ran` for reduced-cost fixing and child
  /// warm-starting.
  double node_bound(const SearchState& s, double cost, int depth,
                    const std::vector<double>& lambda, double best_cost,
                    LagrangianBound& lagr, bool& lagr_ran) const;

  /// Reduced-cost fixing against `best_cost`; returns how many columns were
  /// dropped from `s.available`.
  std::size_t fix_columns(SearchState& s, double cost, double best_cost,
                          const LagrangianBound& lagr) const;

  /// Branching row (fewest available columns) and its columns
  /// cheapest-first.
  std::vector<std::size_t> branch_columns(const SearchState& s) const;

  const CoverProblem& problem() const { return p_; }
  const BnbOptions& options() const { return opt_; }

 private:
  const CoverProblem& p_;
  const BnbOptions& opt_;
  /// Per-row columns sorted by (weight, index): the MIS bound's
  /// cheapest-available probe and the Lagrangian MIS seeding both read it.
  std::vector<std::vector<std::size_t>> row_cols_by_weight_;
};

/// Seeds the incumbent: greedy cover, improved by the caller's warm start
/// when that is a valid, cheaper cover. Fills `best` and returns its cost.
double seed_incumbent(const CoverProblem& problem, const BnbOptions& options,
                      std::vector<std::size_t>& best);

}  // namespace cdcs::ucp::detail
