// Parallel branch-and-bound engines for the weighted UCP (docs/performance.md
// section 8). Selected by BnbOptions::mode:
//
//   kRounds  -- round-synchronous deterministic engine: each round pops the
//               top rounds_batch_size frontier nodes sequentially, expands
//               them in parallel as PURE functions of the round-start
//               incumbent, and merges children sequentially in batch order.
//               The explored tree is a function of (instance, options) only,
//               so nodes_explored, the final cover, and
//               CoverSolution::explored_fingerprint are bit-identical at any
//               thread count.
//   kFreeRun -- asynchronous workers over one shared frontier with an atomic
//               monotone incumbent: maximum speed; the explored tree varies
//               run to run but the returned cost is the same proven optimum
//               (stale incumbent reads only ever UNDER-prune).
//
// Internal header: callers go through ucp::solve_exact, which dispatches
// here when mode != kSerial (and the instance is above the dense-DP cutoff).
#pragma once

#include "ucp/bnb_options.hpp"
#include "ucp/cover.hpp"

namespace cdcs::ucp {

/// Runs the parallel engine selected by `options.mode` (must not be
/// kSerial). Fills `*root_bound` (when non-null) with the lower bound
/// established at the root node, for honest-gap reporting on degraded exits.
CoverSolution solve_parallel_bnb(const CoverProblem& problem,
                                 const BnbOptions& options,
                                 double* root_bound);

}  // namespace cdcs::ucp
