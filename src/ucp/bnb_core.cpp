#include "ucp/bnb_core.hpp"

#include <algorithm>
#include <utility>

#include "ucp/greedy.hpp"

namespace cdcs::ucp::detail {

NodeEvaluator::NodeEvaluator(const CoverProblem& problem,
                             const BnbOptions& options)
    : p_(problem), opt_(options) {
  // Reading row_cover here also warms the problem's lazy transpose cache
  // while we are still single-threaded; after this every row_cover call in
  // the const methods is a pure cache read, safe from any thread.
  row_cols_by_weight_.resize(p_.num_rows());
  for (std::size_t r = 0; r < p_.num_rows(); ++r) {
    std::vector<std::size_t>& cols = row_cols_by_weight_[r];
    p_.row_cover(r).for_each([&](std::size_t j) { cols.push_back(j); });
    std::stable_sort(cols.begin(), cols.end(),
                     [&](std::size_t a, std::size_t b) {
                       return p_.column(a).weight < p_.column(b).weight;
                     });
  }
}

bool NodeEvaluator::reduce(SearchState& s, double& cost,
                           std::vector<std::size_t>& chosen, int depth,
                           double best_cost) const {
  bool changed = true;
  while (changed) {
    changed = false;

    // Essential columns (and infeasibility detection): scan uncovered
    // rows ascending, stop at the first dead or single-cover row.
    bool found_essential = true;
    while (found_essential) {
      found_essential = false;
      std::size_t essential_col = p_.num_columns();
      bool dead = false;
      s.uncovered.for_each_until([&](std::size_t r) {
        const Bitset& cov = p_.row_cover(r);
        const std::size_t count =
            cov.intersection_count_capped(s.available, 2);
        if (count == 0) {
          dead = true;
          return true;
        }
        if (count == 1) {
          essential_col = cov.first_and(s.available);
          return true;
        }
        return false;
      });
      if (dead) return false;
      if (essential_col != p_.num_columns()) {
        cost += p_.column(essential_col).weight;
        if (cost >= best_cost) return false;
        chosen.push_back(essential_col);
        s.uncovered.subtract(p_.column(essential_col).rows);
        s.available.reset(essential_col);
        found_essential = true;
        changed = true;
        if (s.uncovered.none()) return true;
      }
    }

    // Row dominance: if every available column covering r2 also covers r1,
    // r1 is automatically satisfied when r2 is -> ignore r1.
    if (opt_.use_row_dominance) {
      std::vector<std::size_t> rows;
      s.uncovered.for_each([&](std::size_t r) { rows.push_back(r); });
      for (std::size_t r1 : rows) {
        if (!s.uncovered.test(r1)) continue;
        for (std::size_t r2 : rows) {
          if (r1 == r2 || !s.uncovered.test(r2) || !s.uncovered.test(r1)) {
            continue;
          }
          // cols(r2) & available subseteq cols(r1), word-parallel.
          if (p_.row_cover(r2).and_is_subset_of(s.available,
                                                p_.row_cover(r1))) {
            s.uncovered.reset(r1);
            changed = true;
            break;
          }
        }
      }
    }

    // Column dominance on the remaining rows.
    if (opt_.use_column_dominance && depth <= opt_.column_dominance_max_depth) {
      for (std::size_t j1 = 0; j1 < p_.num_columns(); ++j1) {
        if (!s.available.test(j1)) continue;
        if (!p_.column(j1).rows.intersects(s.uncovered)) {
          s.available.reset(j1);  // useless column
          changed = true;
          continue;
        }
        for (std::size_t j2 = 0; j2 < p_.num_columns(); ++j2) {
          if (j1 == j2 || !s.available.test(j2)) continue;
          const double w1 = p_.column(j1).weight;
          const double w2 = p_.column(j2).weight;
          // Tie-break by index so two identical columns don't erase each
          // other.
          if (w2 > w1 || (w2 == w1 && j2 > j1)) continue;
          // (rows(j1) & uncovered) subseteq (rows(j2) & uncovered)?
          if (p_.column(j1).rows.and_is_subset_of(s.uncovered,
                                                  p_.column(j2).rows)) {
            s.available.reset(j1);
            changed = true;
            break;
          }
        }
      }
    }
  }
  return true;
}

double NodeEvaluator::cheapest_available(std::size_t r,
                                         const Bitset& available) const {
  // Probe the weight-sorted list until the first available entry:
  // value-identical to scanning the row's whole column set (the minimum of
  // a set does not depend on the visit order), typically O(1) probes.
  for (std::size_t j : row_cols_by_weight_[r]) {
    if (available.test(j)) return p_.column(j).weight;
  }
  return kInfCost;
}

double NodeEvaluator::lower_bound(const SearchState& s) const {
  if (!opt_.use_mis_lower_bound) return 0.0;
  double bound = 0.0;
  Bitset blocked(p_.num_columns());
  s.uncovered.for_each([&](std::size_t r) {
    const Bitset& cov = p_.row_cover(r);
    if (cov.intersects_masked(s.available, blocked)) return;
    const double cheapest = cheapest_available(r, s.available);
    if (cheapest < kInfCost) {
      bound += cheapest;
      blocked.unite_and(cov, s.available);
    }
  });
  return bound;
}

double NodeEvaluator::node_bound(const SearchState& s, double cost, int depth,
                                 const std::vector<double>& lambda,
                                 double best_cost, LagrangianBound& lagr,
                                 bool& lagr_ran) const {
  double bound = lower_bound(s);
  lagr_ran = false;
  if (opt_.use_lagrangian_bound && cost + bound < best_cost) {
    SubgradientOptions sopt;
    sopt.max_iterations = depth == 0 ? opt_.lagrangian_root_iterations
                                     : opt_.lagrangian_node_iterations;
    const std::vector<double>* warm = lambda.empty() ? nullptr : &lambda;
    lagr = subgradient_bound(p_, s.uncovered, s.available, best_cost - cost,
                             sopt, warm);
    bound = std::max(bound, lagr.bound);
    lagr_ran = true;
  }
  return bound;
}

std::size_t NodeEvaluator::fix_columns(SearchState& s, double cost,
                                       double best_cost,
                                       const LagrangianBound& lagr) const {
  // A cover through column j costs at least bound + max(0, rc_j) on top of
  // `cost`; strictly past the incumbent the column can never improve on it,
  // so it is dropped from this subtree (permanently when called at the
  // root). The comparison is strict with an absolute+relative tolerance so
  // a column of an ALTERNATIVE optimal cover (bound + rc == incumbent) is
  // never removed.
  const double budget = best_cost - cost;
  std::vector<std::size_t> victims;
  s.available.for_each([&](std::size_t j) {
    const double through = lagr.bound + std::max(0.0, lagr.reduced_costs[j]);
    if (through > budget * (1.0 + 1e-12) + 1e-9) victims.push_back(j);
  });
  for (std::size_t j : victims) s.available.reset(j);
  return victims.size();
}

std::vector<std::size_t> NodeEvaluator::branch_columns(
    const SearchState& s) const {
  std::size_t best_row = p_.num_rows();
  std::size_t best_count = std::numeric_limits<std::size_t>::max();
  s.uncovered.for_each([&](std::size_t r) {
    const std::size_t count = p_.row_cover(r).intersection_count(s.available);
    if (count < best_count) {
      best_count = count;
      best_row = r;
    }
  });
  std::vector<std::size_t> cols;
  if (best_row == p_.num_rows()) return cols;
  p_.row_cover(best_row).for_each_and(
      s.available, [&](std::size_t j) { cols.push_back(j); });
  std::sort(cols.begin(), cols.end(), [&](std::size_t a, std::size_t b) {
    return p_.column(a).weight < p_.column(b).weight;
  });
  return cols;
}

double seed_incumbent(const CoverProblem& problem, const BnbOptions& options,
                      std::vector<std::size_t>& best) {
  const CoverSolution greedy = solve_greedy(problem);
  double best_cost = greedy.cost;
  best = greedy.chosen;
  if (options.warm_start.empty()) return best_cost;
  std::vector<std::size_t> warm = options.warm_start;
  std::sort(warm.begin(), warm.end());
  warm.erase(std::unique(warm.begin(), warm.end()), warm.end());
  if (warm.empty() || warm.back() >= problem.num_columns()) return best_cost;
  if (!problem.covers_all(warm)) return best_cost;
  const double warm_cost = problem.cost_of(warm);
  if (warm_cost < best_cost) {
    best_cost = warm_cost;
    best = std::move(warm);
  }
  return best_cost;
}

}  // namespace cdcs::ucp::detail
