#include "ucp/parallel_bnb.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/trace.hpp"
#include "ucp/bnb_core.hpp"
#include "ucp/lagrangian.hpp"

namespace cdcs::ucp {
namespace {

using detail::FrontierNode;
using detail::NodeEvaluator;
using detail::SearchState;
using detail::frontier_after;
using detail::kInfCost;

constexpr std::size_t kProgressPeriod = 1024;

/// splitmix64 finalizer: the explored-set fingerprint's mixing function.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// The outcome of expanding one frontier node: everything the (sequential)
/// merge step needs, computed without touching shared state.
struct Expansion {
  bool feasible{true};  ///< reduce() succeeded (branch not pruned/dead)
  bool solved{false};   ///< all rows covered after reductions
  bool pruned{false};   ///< node bound met the incumbent snapshot
  int depth{0};
  double cost{0.0};    ///< node cost after forced columns
  double bound{0.0};   ///< cost + subproblem bound (== cost when solved)
  std::vector<std::size_t> chosen;      ///< the cover, when solved
  std::vector<double> multipliers;      ///< root ascent result (depth 0 only)
  std::size_t rc_fixed{0};              ///< reduced-cost fixing victims
  std::vector<FrontierNode> children;   ///< seq unset; assigned at merge
};

/// Expands one node against an incumbent-cost snapshot. PURE: reads only
/// the node, the snapshot, and the const evaluator, so concurrent calls
/// with the same inputs produce identical outputs -- the determinism of
/// kRounds mode rests on this.
Expansion expand_node(const NodeEvaluator& eval, FrontierNode node,
                      double best_cost) {
  const CoverProblem& p = eval.problem();
  const BnbOptions& opt = eval.options();
  Expansion out;
  out.depth = node.depth;
  if (!eval.reduce(node.s, node.cost, node.chosen, node.depth, best_cost)) {
    out.feasible = false;
    return out;
  }
  out.cost = node.cost;
  if (node.s.uncovered.none()) {
    out.solved = true;
    out.bound = node.cost;
    out.chosen = std::move(node.chosen);
    return out;
  }
  LagrangianBound lagr;
  bool lagr_ran = false;
  const double bound = eval.node_bound(node.s, node.cost, node.depth,
                                       node.lambda, best_cost, lagr, lagr_ran);
  out.bound = node.cost + bound;
  if (node.depth == 0 && lagr_ran) out.multipliers = lagr.multipliers;
  if (node.cost + bound >= best_cost) {
    out.pruned = true;
    return out;
  }
  // Refixing trigger: a pure function of the node identity (seq), unlike
  // the serial solver's global visited-node counter, which would make the
  // fixing schedule depend on expansion order.
  if (lagr_ran && opt.use_reduced_cost_fixing &&
      (node.depth == 0 || node.seq % opt.reduced_cost_fixing_period == 0)) {
    out.rc_fixed = eval.fix_columns(node.s, node.cost, best_cost, lagr);
  }

  const std::vector<std::size_t> cols = eval.branch_columns(node.s);
  const std::vector<double>& child_lambda =
      lagr_ran ? lagr.multipliers : node.lambda;
  for (std::size_t j : cols) {
    const double child_cost = node.cost + p.column(j).weight;
    if (child_cost >= best_cost) {
      node.s.available.reset(j);
      continue;
    }
    FrontierNode child;
    child.s = node.s;
    child.s.uncovered.subtract(p.column(j).rows);
    child.s.available.reset(j);
    child.cost = child_cost;
    child.chosen = node.chosen;
    child.chosen.push_back(j);
    child.lambda = child_lambda;
    // Clamped to the parent's priority so priorities are monotone
    // NONDECREASING down every root-to-leaf path (the serial engine's
    // max(node.cost + bound, child_cost) alone already is in practice, but
    // the clamp makes it an invariant). It buys the free-run termination
    // proof: when a worker observes heap-top priority >= incumbent with no
    // node in flight, every future descendant is bounded below the same
    // way, so the incumbent is globally optimal.
    child.priority = std::max({node.priority, node.cost + bound, child_cost});
    child.depth = node.depth + 1;
    child.seq = 0;  // assigned by the merge step, in deterministic order
    out.children.push_back(std::move(child));
    // Sibling branches assume column j excluded.
    node.s.available.reset(j);
  }
  return out;
}

FrontierNode make_root(const CoverProblem& p, const BnbOptions& opt) {
  SearchState root{Bitset(p.num_rows()), Bitset(p.num_columns())};
  root.uncovered.set_all();
  root.available.set_all();
  std::vector<double> root_lambda;
  if (opt.warm_multipliers.size() == p.num_rows()) {
    root_lambda = opt.warm_multipliers;
  }
  return FrontierNode{std::move(root), 0.0, {}, std::move(root_lambda),
                      0.0, 0, 0};
}

void flush_run_metrics(std::size_t rc_fixed, std::size_t incumbent_updates) {
  auto& registry = support::MetricsRegistry::global();
  registry.counter("ucp.rc_fixed_columns").add(rc_fixed);
  registry.counter("ucp.incumbent_updates").add(incumbent_updates);
}

// ---- Deterministic round-synchronous engine (kRounds) ---------------------

CoverSolution run_rounds(const CoverProblem& p, const BnbOptions& opt,
                         double* root_bound_out) {
  support::TraceSink* sink = support::trace_sink();
  NodeEvaluator eval(p, opt);
  auto& frontier_gauge =
      support::MetricsRegistry::global().gauge("ucp.frontier_depth");

  std::vector<std::size_t> best;
  double best_cost = detail::seed_incumbent(p, opt, best);

  const std::size_t workers = support::resolve_thread_count(opt.threads);
  std::unique_ptr<support::ThreadPool> owned;
  support::ThreadPool* pool = opt.pool;
  if (pool == nullptr && workers > 1) {
    owned = std::make_unique<support::ThreadPool>(workers);
    pool = owned.get();
  }

  std::vector<FrontierNode> heap;
  heap.push_back(make_root(p, opt));
  std::uint64_t next_seq = 1;

  std::size_t nodes = 0;
  std::size_t rc_fixed = 0;
  std::size_t incumbent_updates = 0;
  std::size_t last_progress_nodes = 0;
  double root_bound = 0.0;
  std::vector<double> root_multipliers;
  bool complete = true;
  bool deadline_hit = false;
  CoverStop stop = CoverStop::kCompleted;
  std::uint64_t fingerprint = 0;
  const std::size_t batch_cap = std::max<std::size_t>(1, opt.rounds_batch_size);

  while (!heap.empty()) {
    // Everything on the frontier is at least as bad as the incumbent: it is
    // proven optimal and the search is complete.
    if (heap.front().priority >= best_cost) break;
    if (opt.deadline.expired()) {
      complete = false;
      deadline_hit = true;
      stop = CoverStop::kDeadline;
      break;
    }
    // One frontier-site consultation per round: a firing abandons the solve
    // all-or-nothing (the incumbent so far is returned, never a torn one).
    if (opt.fault_injector != nullptr &&
        opt.fault_injector->should_fail(support::fault_sites::kUcpFrontier)) {
      complete = false;
      stop = CoverStop::kAborted;
      break;
    }

    // Drain the round's batch sequentially. The fingerprint is hashed HERE,
    // at pop time, because expansion mutates node.cost in place.
    std::vector<FrontierNode> batch;
    bool out_of_budget = false;
    while (batch.size() < batch_cap && !heap.empty() &&
           heap.front().priority < best_cost) {
      if (nodes >= opt.max_nodes) {
        out_of_budget = true;
        break;
      }
      std::pop_heap(heap.begin(), heap.end(), frontier_after);
      FrontierNode node = std::move(heap.back());
      heap.pop_back();
      ++nodes;
      fingerprint = mix64(fingerprint ^ mix64(node.seq) ^
                          mix64(static_cast<std::uint64_t>(node.depth)) ^
                          mix64(double_bits(node.cost)));
      batch.push_back(std::move(node));
    }
    if (batch.empty()) {
      if (out_of_budget) {
        complete = false;
        stop = CoverStop::kNodeBudget;
      }
      break;
    }

    // Expand the whole batch against ONE incumbent snapshot: each expansion
    // is a pure function of (node, snapshot), so the round's results do not
    // depend on worker count or scheduling.
    const double snapshot = best_cost;
    std::vector<Expansion> results = support::parallel_map_ordered(
        batch.size() > 1 ? pool : nullptr, batch.size(),
        [&](std::size_t i) {
          return expand_node(eval, std::move(batch[i]), snapshot);
        });

    // Merge sequentially in batch (= pop) order; child seq numbers and the
    // incumbent evolution within the round are therefore deterministic.
    for (Expansion& r : results) {
      rc_fixed += r.rc_fixed;
      if (!r.feasible) continue;
      if (r.depth == 0) {
        root_bound = r.bound;
        if (!r.multipliers.empty()) root_multipliers = std::move(r.multipliers);
      }
      if (r.solved) {
        if (r.cost < best_cost) {
          best_cost = r.cost;
          best = std::move(r.chosen);
          ++incumbent_updates;
          if (sink != nullptr) {
            support::trace_instant(
                "ucp.incumbent_improved", "ucp",
                "{\"cost\":" + std::to_string(r.cost) +
                    ",\"nodes\":" + std::to_string(nodes) + "}");
          }
          support::flight_record("incumbent",
                                 "cost=" + std::to_string(r.cost) +
                                     " nodes=" + std::to_string(nodes));
        }
        continue;
      }
      if (r.pruned) continue;
      for (FrontierNode& child : r.children) {
        // Re-checked against the incumbent as merged so far this round
        // (still deterministic: the merge order is fixed).
        if (child.cost >= best_cost) continue;
        child.seq = next_seq++;
        heap.push_back(std::move(child));
        std::push_heap(heap.begin(), heap.end(), frontier_after);
      }
    }

    frontier_gauge.set_max(static_cast<double>(heap.size()));
    if (sink != nullptr && nodes - last_progress_nodes >= kProgressPeriod) {
      last_progress_nodes = nodes;
      support::trace_counter("ucp.nodes", static_cast<double>(nodes), "ucp");
      if (best_cost < kInfCost) {
        support::trace_counter("ucp.incumbent", best_cost, "ucp");
      }
    }
    if (out_of_budget) {
      complete = false;
      stop = CoverStop::kNodeBudget;
      break;
    }
    if (heap.size() > opt.best_first_max_frontier) {
      complete = false;
      stop = CoverStop::kFrontierCap;
      break;
    }
  }

  if (sink != nullptr) {
    support::trace_counter("ucp.nodes", static_cast<double>(nodes), "ucp");
  }
  flush_run_metrics(rc_fixed, incumbent_updates);

  CoverSolution sol;
  sol.chosen = std::move(best);
  std::sort(sol.chosen.begin(), sol.chosen.end());
  sol.cost = best_cost;
  sol.optimal = complete && best_cost < kInfCost;
  sol.nodes_explored = nodes;
  sol.deadline_expired = deadline_hit;
  sol.stop = stop;
  sol.explored_fingerprint = fingerprint;
  sol.root_multipliers = std::move(root_multipliers);
  if (root_bound_out != nullptr) *root_bound_out = root_bound;
  return sol;
}

// ---- Asynchronous engine (kFreeRun) ---------------------------------------

struct FreeRunShared {
  const NodeEvaluator& eval;
  const BnbOptions& opt;
  support::TraceSink* sink;

  // Frontier state, guarded by mu. `active` counts nodes popped but not yet
  // merged back; `live` counts workers that have not exited.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<FrontierNode> heap;
  std::uint64_t next_seq{1};
  int active{0};
  int live{0};
  bool done{false};
  bool complete{true};
  bool deadline_hit{false};
  CoverStop stop{CoverStop::kCompleted};
  std::size_t nodes{0};
  double root_bound{0.0};
  std::vector<double> root_multipliers;

  // The incumbent: {cost, cover} live under their own mutex so a reader
  // never sees a cost paired with another cover (no torn incumbent). The
  // atomic mirrors the guarded cost for lock-free pruning reads; it is
  // stored INSIDE the lock, so it only ever decreases, and a stale (higher)
  // read can only make a worker prune LESS -- never wrongly.
  std::mutex incumbent_mu;
  std::vector<std::size_t> best;
  double best_cost_guarded{kInfCost};
  std::atomic<double> best_cost{kInfCost};

  std::atomic<std::size_t> rc_fixed{0};
  std::atomic<std::size_t> incumbent_updates{0};

  FreeRunShared(const NodeEvaluator& e, const BnbOptions& o,
                support::TraceSink* s)
      : eval(e), opt(o), sink(s) {}

  /// Terminal condition reached (budget/deadline/frontier cap): record it
  /// (first reason wins) and wake everyone. Caller holds mu.
  void halt(CoverStop reason) {
    complete = false;
    if (stop == CoverStop::kCompleted) stop = reason;
    done = true;
    cv.notify_all();
  }

  void try_accept(double cost, std::vector<std::size_t>&& chosen,
                  std::size_t nodes_hint) {
    std::lock_guard<std::mutex> g(incumbent_mu);
    if (cost >= best_cost_guarded) return;
    best_cost_guarded = cost;
    best = std::move(chosen);
    best_cost.store(cost, std::memory_order_release);
    incumbent_updates.fetch_add(1, std::memory_order_relaxed);
    if (sink != nullptr) {
      support::trace_instant("ucp.incumbent_improved", "ucp",
                             "{\"cost\":" + std::to_string(cost) +
                                 ",\"nodes\":" + std::to_string(nodes_hint) +
                                 "}");
    }
    support::flight_record("incumbent",
                           "cost=" + std::to_string(cost) +
                               " nodes=" + std::to_string(nodes_hint));
  }
};

void free_run_worker(FreeRunShared& sh) {
  auto& frontier_gauge =
      support::MetricsRegistry::global().gauge("ucp.frontier_depth");
  std::size_t local_nodes = 0;
  std::unique_lock<std::mutex> lock(sh.mu);
  while (!sh.done) {
    const double best_now = sh.best_cost.load(std::memory_order_relaxed);
    const bool has_work =
        !sh.heap.empty() && sh.heap.front().priority < best_now;
    if (!has_work) {
      if (sh.active == 0) {
        // Frontier empty or dominated with no node in flight: since child
        // priorities are clamped monotone, every unexplored descendant is
        // bounded >= the incumbent, which is therefore globally optimal.
        sh.done = true;
        sh.cv.notify_all();
        break;
      }
      sh.cv.wait(lock);
      continue;
    }
    if (sh.nodes >= sh.opt.max_nodes) {
      sh.halt(CoverStop::kNodeBudget);
      break;
    }
    if (sh.opt.deadline.expired()) {
      sh.deadline_hit = true;
      sh.halt(CoverStop::kDeadline);
      break;
    }
    if (sh.opt.fault_injector != nullptr &&
        sh.opt.fault_injector->should_fail(
            support::fault_sites::kUcpFrontier)) {
      // This worker dies; survivors finish the search. The result stays a
      // valid cover but is no longer CLAIMED optimal (conservative: the
      // survivors usually do prove it).
      sh.complete = false;
      if (sh.stop == CoverStop::kCompleted) sh.stop = CoverStop::kAborted;
      break;
    }

    std::pop_heap(sh.heap.begin(), sh.heap.end(), frontier_after);
    FrontierNode node = std::move(sh.heap.back());
    sh.heap.pop_back();
    ++sh.nodes;
    ++sh.active;
    lock.unlock();

    ++local_nodes;
    if (sh.sink != nullptr && local_nodes % kProgressPeriod == 0) {
      // Per-thread node-rate track (events carry the emitting thread's id).
      support::trace_counter("ucp.nodes", static_cast<double>(local_nodes),
                             "ucp");
    }
    const double snapshot = sh.best_cost.load(std::memory_order_acquire);
    Expansion r = expand_node(sh.eval, std::move(node), snapshot);
    if (r.rc_fixed > 0) {
      sh.rc_fixed.fetch_add(r.rc_fixed, std::memory_order_relaxed);
    }
    if (r.feasible && r.solved) {
      sh.try_accept(r.cost, std::move(r.chosen), local_nodes);
    }

    lock.lock();
    --sh.active;
    if (r.feasible && r.depth == 0) {
      sh.root_bound = r.bound;
      if (!r.multipliers.empty()) {
        sh.root_multipliers = std::move(r.multipliers);
      }
    }
    if (r.feasible && !r.solved && !r.pruned) {
      const double best_merge = sh.best_cost.load(std::memory_order_relaxed);
      for (FrontierNode& child : r.children) {
        if (child.cost >= best_merge) continue;
        child.seq = sh.next_seq++;
        sh.heap.push_back(std::move(child));
        std::push_heap(sh.heap.begin(), sh.heap.end(), frontier_after);
      }
      frontier_gauge.set_max(static_cast<double>(sh.heap.size()));
      if (sh.heap.size() > sh.opt.best_first_max_frontier) {
        sh.halt(CoverStop::kFrontierCap);
        break;
      }
    }
    sh.cv.notify_all();
  }
  if (!lock.owns_lock()) lock.lock();
  // Last worker out closes the shop even on the all-workers-died-by-fault
  // path, so the driver never waits on a frontier nobody will drain.
  if (--sh.live == 0 && !sh.done) {
    sh.done = true;
  }
  lock.unlock();
  sh.cv.notify_all();
  if (sh.sink != nullptr && local_nodes > 0) {
    support::trace_counter("ucp.nodes", static_cast<double>(local_nodes),
                           "ucp");
  }
}

CoverSolution run_free(const CoverProblem& p, const BnbOptions& opt,
                       double* root_bound_out) {
  support::TraceSink* sink = support::trace_sink();
  NodeEvaluator eval(p, opt);
  FreeRunShared sh(eval, opt, sink);
  sh.best_cost_guarded = detail::seed_incumbent(p, opt, sh.best);
  sh.best_cost.store(sh.best_cost_guarded, std::memory_order_relaxed);
  sh.heap.push_back(make_root(p, opt));

  const std::size_t workers = support::resolve_thread_count(opt.threads);
  std::unique_ptr<support::ThreadPool> owned;
  support::ThreadPool* pool = opt.pool;
  if (pool == nullptr && workers > 1) {
    owned = std::make_unique<support::ThreadPool>(workers - 1);
    pool = owned.get();
  }
  const std::size_t helpers =
      (pool != nullptr && workers > 1) ? workers - 1 : 0;
  sh.live = static_cast<int>(1 + helpers);

  std::vector<std::future<void>> futures;
  futures.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i) {
    futures.push_back(pool->submit([&sh] { free_run_worker(sh); }));
  }
  // The calling thread is worker 0: even if the (possibly borrowed) pool is
  // saturated and never schedules a helper, the solve still completes.
  free_run_worker(sh);
  for (std::future<void>& f : futures) f.get();

  flush_run_metrics(sh.rc_fixed.load(), sh.incumbent_updates.load());

  CoverSolution sol;
  sol.chosen = std::move(sh.best);
  std::sort(sol.chosen.begin(), sol.chosen.end());
  sol.cost = sh.best_cost_guarded;
  sol.optimal = sh.complete && sol.cost < kInfCost;
  sol.nodes_explored = sh.nodes;
  sol.deadline_expired = sh.deadline_hit;
  sol.stop = sh.stop;
  sol.root_multipliers = std::move(sh.root_multipliers);
  if (root_bound_out != nullptr) *root_bound_out = sh.root_bound;
  return sol;
}

}  // namespace

CoverSolution solve_parallel_bnb(const CoverProblem& problem,
                                 const BnbOptions& options,
                                 double* root_bound) {
  support::Span span(
      options.mode == BnbMode::kRounds ? "ucp.bnb_rounds" : "ucp.bnb_free",
      "ucp",
      "{\"rows\":" + std::to_string(problem.num_rows()) +
          ",\"cols\":" + std::to_string(problem.num_columns()) +
          ",\"threads\":" +
          std::to_string(support::resolve_thread_count(options.threads)) +
          "}");
  if (options.mode == BnbMode::kRounds) {
    return run_rounds(problem, options, root_bound);
  }
  return run_free(problem, options, root_bound);
}

}  // namespace cdcs::ucp
