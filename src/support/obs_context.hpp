// Scoped observability contexts: attribute every span, counter bump, and
// flight-recorder event to a run/session/solve scope (docs/observability.md).
//
// Model. An ObsContext is an RAII frame that pushes a string label
// ("session=wan_a", "solve=17") onto a thread-local scope stack; nested
// frames concatenate into a path ("session=wan_a/solve=17"). The current
// path is stamped onto trace events at emission time and onto flight
// recorder entries, so a postmortem or Chrome trace can answer "WHICH
// solve was doing this". ThreadPool::submit() captures the submitter's
// scope handle and re-installs it around the task on the worker thread, so
// work fanned out through parallel_map_ordered stays attributed to the
// scope that requested it.
//
// Contracts (inherited from support/trace, pinned by tests):
//   * Zero cost when disabled: with no trace sink installed, entering or
//     leaving a scope touches only a thread-local shared_ptr -- no clock,
//     no lock, no registry. Scope stamping happens AFTER the sink null
//     check inside the emit helpers.
//   * Bit-identical results: scopes are write-only metadata. Nothing reads
//     the current scope to make a decision, so scoped and unscoped runs
//     produce identical solutions, node counts, and fingerprints.
//
// Per-scope metrics: the process-global MetricsRegistry is cumulative, so
// per-scope views are DELTAS. Constructing an ObsContext with
// kCaptureMetricsBaseline snapshots the registry; delta() returns what was
// recorded while the scope was live (MetricsSnapshot::delta_since). The
// default constructor skips the snapshot so hot paths can scope cheaply.
#pragma once

#include <memory>
#include <string>

#include "support/metrics.hpp"

namespace cdcs::support {

/// One immutable node of the scope stack. Nodes are shared_ptr-linked so a
/// handle captured by a pool task keeps its whole ancestry alive after the
/// submitting frame unwinds. The full path is concatenated eagerly at
/// construction: stamping an event is a single string copy.
class ObsScopeNode {
 public:
  ObsScopeNode(std::string label,
               std::shared_ptr<const ObsScopeNode> parent);

  /// "outer/inner" path, root first. Never empty for a live node.
  const std::string& path() const { return path_; }
  /// This node's own label (the last path segment).
  const std::string& label() const { return label_; }
  const std::shared_ptr<const ObsScopeNode>& parent() const {
    return parent_;
  }

 private:
  std::string label_;
  std::string path_;
  std::shared_ptr<const ObsScopeNode> parent_;
};

/// Shareable reference to a scope stack (null = no scope). Cheap to copy
/// across threads; what ThreadPool::submit captures.
using ObsScopeHandle = std::shared_ptr<const ObsScopeNode>;

/// The calling thread's current scope (null when none is active).
ObsScopeHandle current_obs_scope();

/// The calling thread's current scope path, "" when none is active. The
/// reference is valid while the scope is (emit sites copy immediately).
const std::string& current_obs_scope_path();

/// Tag selecting the metrics-baseline-capturing ObsContext constructor.
struct CaptureMetricsBaselineTag {};
inline constexpr CaptureMetricsBaselineTag kCaptureMetricsBaseline{};

/// RAII scope frame for the current thread. Construction pushes `label`
/// onto the scope stack; destruction restores whatever was current before
/// (frames may therefore interleave with other RAII state safely, but must
/// be destroyed on the thread that created them).
class ObsContext {
 public:
  explicit ObsContext(std::string label);
  /// Also snapshots MetricsRegistry::global() so delta() works. Costs a
  /// full registry snapshot -- use on session/solve granularity, not in
  /// inner loops.
  ObsContext(std::string label, CaptureMetricsBaselineTag);
  ~ObsContext();

  ObsContext(const ObsContext&) = delete;
  ObsContext& operator=(const ObsContext&) = delete;

  /// Full path of this frame ("outer/inner").
  const std::string& path() const { return node_->path(); }

  /// Metrics recorded (process-wide) since this frame was entered: the
  /// per-scope delta view. Requires the kCaptureMetricsBaseline
  /// constructor; returns an empty snapshot otherwise.
  MetricsSnapshot delta() const;

 private:
  ObsScopeHandle node_;
  ObsScopeHandle prev_;
  std::unique_ptr<MetricsSnapshot> baseline_;
};

/// Installs `scope` (possibly null) as the current thread's scope for its
/// own lifetime, restoring the previous scope on destruction. What the
/// thread pool wraps around each task so worker threads inherit the
/// submitter's scope.
class ObsScopeGuard {
 public:
  explicit ObsScopeGuard(ObsScopeHandle scope);
  ~ObsScopeGuard();

  ObsScopeGuard(const ObsScopeGuard&) = delete;
  ObsScopeGuard& operator=(const ObsScopeGuard&) = delete;

 private:
  ObsScopeHandle prev_;
};

}  // namespace cdcs::support
