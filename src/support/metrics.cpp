#include "support/metrics.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <utility>

namespace cdcs::support {
namespace {

std::atomic<bool> g_timing_enabled{false};

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t Gauge::encode(double v) { return std::bit_cast<std::uint64_t>(v); }
double Gauge::decode(std::uint64_t bits) { return std::bit_cast<double>(bits); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  // cells: one per bucket (bounds + overflow), then count, then sum bits.
  const std::size_t cells = bounds_.size() + 1 + 2;
  for (Shard& s : shards_) {
    s.cells = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      s.cells[i].store(0, std::memory_order_relaxed);
    }
  }
}

std::vector<double> Histogram::latency_us_bounds() {
  // 1us .. ~17s in powers of 4: 13 buckets, covers a placement solve and a
  // whole WAN synthesis alike.
  std::vector<double> b;
  for (double v = 1.0; v <= 68'719'476.0; v *= 4.0) b.push_back(v);
  return b;
}

void Histogram::add_sum(Shard& shard, double v) {
  const std::size_t sum_cell = bounds_.size() + 1 + 1;
  std::uint64_t cur = shard.cells[sum_cell].load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(cur) + v;
    if (shard.cells[sum_cell].compare_exchange_weak(
            cur, std::bit_cast<std::uint64_t>(next),
            std::memory_order_relaxed)) {
      return;
    }
  }
}

void Histogram::observe(double v) {
  Shard& shard = shards_[trace_thread_id() % kMetricShards];
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  shard.cells[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.cells[bounds_.size() + 1].fetch_add(1, std::memory_order_relaxed);
  add_sum(shard, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      snap.buckets[i] += s.cells[i].load(std::memory_order_relaxed);
    }
    snap.count += s.cells[bounds_.size() + 1].load(std::memory_order_relaxed);
    snap.sum += std::bit_cast<double>(
        s.cells[bounds_.size() + 2].load(std::memory_order_relaxed));
  }
  return snap;
}

void Histogram::reset() {
  const std::size_t cells = bounds_.size() + 1 + 2;
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < cells; ++i) {
      s.cells[i].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsSnapshot MetricsSnapshot::delta_since(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot d = *this;
  for (auto& [name, v] : d.counters) {
    auto it = earlier.counters.find(name);
    if (it != earlier.counters.end() && it->second <= v) v -= it->second;
  }
  for (auto& [name, h] : d.histograms) {
    auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    const Histogram::Snapshot& e = it->second;
    if (e.count > h.count || e.buckets.size() != h.buckets.size()) continue;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (e.buckets[i] <= h.buckets[i]) h.buckets[i] -= e.buckets[i];
    }
    h.count -= e.count;
    h.sum -= e.sum;
  }
  return d;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(
        bounds.empty() ? Histogram::latency_us_bounds() : bounds);
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    snap.histograms[name] = h->snapshot();
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

void set_timing_enabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool timing_enabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const char* name, const char* category,
                         Histogram* latency_hist, Counter* wall_us_total,
                         std::string args)
    : hist_(latency_hist),
      total_(wall_us_total),
      span_(name, category, std::move(args)) {
  if (timing_enabled() || tracing_enabled()) start_ns_ = steady_now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (start_ns_ == 0) return;
  const double us =
      static_cast<double>(steady_now_ns() - start_ns_) / 1000.0;
  if (hist_ != nullptr) hist_->observe(us);
  if (total_ != nullptr) {
    total_->add(static_cast<std::uint64_t>(us < 0.0 ? 0.0 : us));
  }
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  auto write_name = [&os](const std::string& name) {
    write_json_string(os, name);
  };
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snapshot.counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(name);
    os << ": " << v;
  }
  os << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snapshot.gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(name);
    os << ": " << v;
  }
  os << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(name);
    os << ": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) os << ", ";
      os << "[";
      if (i < h.bounds.size()) {
        os << h.bounds[i];
      } else {
        os << "\"+inf\"";
      }
      os << ", " << h.buckets[i] << "]";
    }
    os << "]}";
  }
  os << "\n  }\n}\n";
}

}  // namespace cdcs::support
