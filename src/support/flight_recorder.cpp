#include "support/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <utility>

#include "support/metrics.hpp"
#include "support/obs_context.hpp"
#include "support/trace.hpp"

namespace cdcs::support {
namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Postmortem arming state. The latch is atomic so the common disarmed /
// already-latched checks at fault sites stay lock-free; the directory and
// the file write serialize on the mutex.
std::mutex g_postmortem_mu;
std::string g_postmortem_dir;  // guarded by g_postmortem_mu
std::atomic<bool> g_postmortem_armed{false};
std::atomic<bool> g_postmortem_latched{false};
std::atomic<std::uint64_t> g_postmortem_seq{0};

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 16)),
      epoch_ns_(steady_ns()) {
  ring_.reserve(capacity_);
}

void FlightRecorder::record(const char* kind, std::string detail) {
  FlightEvent e;
  e.timestamp_us = (steady_ns() - epoch_ns_) / 1000;
  e.thread_id = trace_thread_id();
  e.kind = kind;
  e.detail = std::move(detail);
  e.scope = current_obs_scope_path();
  std::lock_guard<std::mutex> lock(mu_);
  e.seq = total_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  wrapped_ = true;
  ring_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out = ring_;
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

FlightRecorder& FlightRecorder::global() {
  // Never destructed: instrumentation sites may fire during static
  // teardown (same stance as MetricsRegistry::global()).
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

void flight_record(const char* kind, std::string detail) {
  FlightRecorder::global().record(kind, std::move(detail));
}

void dump_postmortem(std::ostream& os, const char* trigger,
                     const std::string& detail) {
  FlightRecorder& recorder = FlightRecorder::global();
  const std::vector<FlightEvent> events = recorder.snapshot();

  os << "{\n  \"postmortem\": {\"trigger\": ";
  write_json_string(os, trigger);
  os << ", \"detail\": ";
  write_json_string(os, detail);
  os << ", \"scope\": ";
  write_json_string(os, current_obs_scope_path());
  os << ", \"timestamp_us\": "
     << (events.empty() ? 0 : events.back().timestamp_us) << "},\n";

  os << "  \"flight_recorder\": {\"capacity\": " << recorder.capacity()
     << ", \"total_recorded\": " << recorder.total_recorded()
     << ", \"events\": [";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "\n    {\"seq\": " << e.seq << ", \"ts_us\": " << e.timestamp_us
       << ", \"tid\": " << e.thread_id << ", \"kind\": ";
    write_json_string(os, e.kind);
    os << ", \"detail\": ";
    write_json_string(os, e.detail);
    os << ", \"scope\": ";
    write_json_string(os, e.scope);
    os << "}";
  }
  os << "\n  ]},\n";

  os << "  \"metrics\": ";
  write_metrics_json(os, MetricsRegistry::global().snapshot());
  os << ",\n  \"trace\": ";
  if (TraceSink* sink = trace_sink(); sink != nullptr) {
    write_chrome_trace(os, *sink);
  } else {
    os << "null";
  }
  os << "\n}\n";
}

void set_postmortem_dir(std::string dir) {
  std::lock_guard<std::mutex> lock(g_postmortem_mu);
  g_postmortem_dir = std::move(dir);
  g_postmortem_armed.store(!g_postmortem_dir.empty(),
                           std::memory_order_release);
  g_postmortem_latched.store(false, std::memory_order_release);
}

std::string postmortem_dir() {
  std::lock_guard<std::mutex> lock(g_postmortem_mu);
  return g_postmortem_dir;
}

void reset_postmortem_latch() {
  g_postmortem_latched.store(false, std::memory_order_release);
}

std::string maybe_dump_postmortem(const char* trigger,
                                  const std::string& detail) {
  if (!g_postmortem_armed.load(std::memory_order_acquire)) return "";
  if (g_postmortem_latched.exchange(true, std::memory_order_acq_rel)) {
    MetricsRegistry::global().counter("postmortem.suppressed").add(1);
    return "";
  }
  std::lock_guard<std::mutex> lock(g_postmortem_mu);
  if (g_postmortem_dir.empty()) return "";
  const std::uint64_t seq =
      g_postmortem_seq.fetch_add(1, std::memory_order_relaxed);
  std::string path = g_postmortem_dir + "/postmortem_" +
                     std::to_string(seq) + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) return "";
  flight_record("postmortem", std::string("dump trigger=") + trigger);
  dump_postmortem(out, trigger, detail);
  MetricsRegistry::global().counter("postmortem.dumps").add(1);
  return path;
}

}  // namespace cdcs::support
