// Zero-cost-when-disabled tracing: RAII spans over the synthesis pipeline,
// a thread-safe ring-buffer event sink, and a Chrome trace_event exporter
// (docs/observability.md).
//
// Model. Instrumentation sites construct `Span` objects (begin/end pairs),
// or emit `trace_counter` / `trace_instant` events. All of them route
// through one process-global sink pointer:
//
//   * No sink installed (the default): every emit site reduces to ONE
//     relaxed atomic load and a branch. No clock is read, no memory is
//     written, no lock is taken -- results, node counts, and thread
//     interleavings are exactly those of an uninstrumented build, which the
//     determinism tests pin (tests/test_trace.cpp).
//   * Sink installed (--trace-out, a test, a bench): events carry a
//     monotonic-clock timestamp (microseconds since the sink was created),
//     a small stable per-thread id, and land in a fixed-capacity ring
//     buffer under a mutex. When the ring wraps, the OLDEST events are
//     overwritten and `dropped()` counts them; the exporter re-balances
//     begin/end pairs so a truncated trace is still well-formed.
//
// Span names and categories must be string literals (or otherwise outlive
// the sink): events store the pointers, not copies -- emitting is O(1) and
// allocation-free except for the optional args string and the ObsContext
// scope path stamped onto each event when a scope is active
// (support/obs_context.hpp); both happen only with a sink installed.
//
// Export: write_chrome_trace() emits the Chrome trace_event JSON array
// format, loadable in Perfetto (https://ui.perfetto.dev) or about:tracing.
// Counter events become "C" tracks (UCP bound progress, queue depths);
// spans become balanced "B"/"E" pairs per thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cdcs::support {

struct TraceEvent {
  enum class Phase : std::uint8_t {
    kBegin,    ///< span opened ("B")
    kEnd,      ///< span closed ("E")
    kCounter,  ///< named value sample ("C"), `value` holds the sample
    kInstant,  ///< point event ("i")
  };

  const char* name{""};      ///< static string; never null
  const char* category{""};  ///< static string; never null
  Phase phase{Phase::kInstant};
  std::int64_t timestamp_us{0};  ///< monotonic, relative to sink creation
  std::uint32_t thread_id{0};    ///< small stable id (see trace_thread_id)
  double value{0.0};             ///< kCounter payload
  std::string args;              ///< preformatted JSON object ("{...}") or ""
  std::string scope;             ///< ObsContext path at emission ("" = none)
};

/// Thread-safe fixed-capacity ring buffer of trace events. Overwrites the
/// oldest events when full (an observability tool must never OOM the
/// process it observes); `dropped()` reports how many were lost.
class TraceSink {
 public:
  explicit TraceSink(std::size_t capacity = 1 << 20);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Appends one event (timestamp/thread id already filled by the emit
  /// helpers). Thread-safe; O(1); never allocates past the initial reserve
  /// except for the event's own args string.
  void record(TraceEvent event);

  /// The buffered events in emission order (oldest surviving first).
  std::vector<TraceEvent> snapshot() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Events overwritten because the ring was full.
  std::size_t dropped() const;

  /// Microseconds of monotonic clock since this sink was created; what the
  /// emit helpers stamp into events.
  std::int64_t now_us() const;

 private:
  const std::size_t capacity_;
  const std::int64_t epoch_ns_;  ///< steady_clock at construction
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  std::size_t head_{0};  ///< next write position once the ring is full
  bool wrapped_{false};
  std::size_t dropped_{0};
};

/// Installs `sink` as the process-global event destination (nullptr
/// disables tracing). The caller keeps ownership; the sink must outlive its
/// installation. Emit sites that already captured the previous sink finish
/// their span against it, so keep the old sink alive briefly after a swap
/// (in practice: install at startup, uninstall at exit -- see
/// ScopedTraceSession).
void install_trace_sink(TraceSink* sink);

/// The currently installed sink (nullptr when tracing is disabled).
TraceSink* trace_sink();

/// True when a sink is installed. One relaxed atomic load.
inline bool tracing_enabled() { return trace_sink() != nullptr; }

/// Small dense id for the calling thread, assigned on first use (0, 1, ...
/// in first-emission order). Stable for the thread's lifetime.
std::uint32_t trace_thread_id();

/// RAII begin/end span. Constructing with no sink installed is inert and
/// costs one atomic load; the end event always goes to the SAME sink that
/// saw the begin, even if the global pointer changed mid-span.
class Span {
 public:
  explicit Span(const char* name, const char* category = "synth",
                std::string args = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceSink* sink_;  ///< captured at construction; null = inert
  const char* name_;
  const char* category_;
};

/// Emits a named counter sample ("C" event; renders as a value-over-time
/// track in Perfetto). No-op without a sink.
void trace_counter(const char* name, double value,
                   const char* category = "synth");

/// Emits an instant point event. No-op without a sink.
void trace_instant(const char* name, const char* category = "synth",
                   std::string args = {});

/// Owns a sink and installs it for its own lifetime; uninstalls (and leaves
/// the events readable) on destruction or explicit `close()`. What the CLI
/// and tests use so a sink is never left dangling on early exits.
class ScopedTraceSession {
 public:
  explicit ScopedTraceSession(std::size_t capacity = 1 << 20);
  ~ScopedTraceSession();

  ScopedTraceSession(const ScopedTraceSession&) = delete;
  ScopedTraceSession& operator=(const ScopedTraceSession&) = delete;

  TraceSink& sink() { return sink_; }
  /// Uninstalls the sink (idempotent); events remain snapshot()-able.
  void close();

 private:
  TraceSink sink_;
  bool installed_{true};
};

/// Writes `events` as Chrome trace_event JSON ({"traceEvents": [...]}).
/// The output is always well-formed even when the ring truncated the
/// stream: per thread, end events with no surviving begin are dropped and
/// still-open begins get a synthetic end at the last seen timestamp, so
/// B/E pairing holds for every thread (the golden test's schema check).
/// Returns the number of events written (after pairing repair).
std::size_t write_chrome_trace(std::ostream& os,
                               const std::vector<TraceEvent>& events);

/// Convenience: snapshot + write. Returns the number of events written
/// (after pairing repair).
std::size_t write_chrome_trace(std::ostream& os, const TraceSink& sink);

/// Writes `s` as a JSON string literal (quotes included), escaping
/// backslash, quote, and control characters. Shared by the trace, metrics,
/// profile, and postmortem exporters so hostile names (scope labels with
/// quotes/newlines/UTF-8) can never break a document.
void write_json_string(std::ostream& os, std::string_view s);

}  // namespace cdcs::support
