#include "support/fault.hpp"

#include <cmath>
#include <utility>

#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"

namespace cdcs::support {
namespace {

/// splitmix64 finalizer: the deterministic hash behind probability rules.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic per-(seed, site, hit) uniform draw in [0, 1).
double unit_draw(std::uint64_t seed, std::string_view site,
                 std::uint64_t hit) {
  const std::uint64_t bits = mix64(seed ^ mix64(fnv1a(site)) ^ hit);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

std::string known_sites_list() {
  std::string out;
  for (const std::string_view s : all_fault_sites()) {
    if (!out.empty()) out += ", ";
    out += s;
  }
  return out;
}

bool is_known_site(std::string_view site) {
  for (const std::string_view s : all_fault_sites()) {
    if (s == site) return true;
  }
  return false;
}

Expected<std::uint64_t> parse_u64(const std::string& tok,
                                  const std::string& what) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(tok, &used);
    if (used != tok.size()) {
      return Status::InvalidInput("bad " + what + " '" + tok + "'");
    }
    return static_cast<std::uint64_t>(v);
  } catch (const std::exception&) {
    return Status::InvalidInput("bad " + what + " '" + tok + "'");
  }
}

}  // namespace

const std::vector<std::string_view>& all_fault_sites() {
  static const std::vector<std::string_view> kSites = {
      fault_sites::kJournalOpen,  fault_sites::kJournalWrite,
      fault_sites::kJournalFsync, fault_sites::kEngineApply,
      fault_sites::kEngineRecover, fault_sites::kPricerMerge,
      fault_sites::kUcpSolve,     fault_sites::kUcpIncumbent,
      fault_sites::kUcpGreedy,    fault_sites::kUcpFrontier,
  };
  return kSites;
}

Expected<FaultPlan> FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    const std::size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) {
      if (pos > spec.size()) break;
      continue;  // empty entry (trailing separator, blank)
    }
    entry = entry.substr(first, entry.find_last_not_of(" \t") - first + 1);

    if (entry.starts_with("seed=")) {
      Expected<std::uint64_t> seed = parse_u64(entry.substr(5), "seed");
      if (!seed.ok()) {
        return std::move(seed).take_status().with_context("fault plan '" +
                                                          spec + "'");
      }
      plan.seed = *seed;
      continue;
    }

    const std::size_t sep = entry.find_first_of("@%~");
    if (sep == std::string::npos || sep == 0) {
      return Status::InvalidInput(
          "fault rule '" + entry +
          "' needs a trigger: site@n (n-th hit), site%k (every k-th), or "
          "site~p (probability)");
    }
    FaultRule rule;
    rule.site = entry.substr(0, sep);
    if (!is_known_site(rule.site)) {
      return Status::InvalidInput("unknown fault site '" + rule.site +
                                  "' (registered sites: " +
                                  known_sites_list() + ")");
    }
    const char kind = entry[sep];
    const std::string arg = entry.substr(sep + 1);
    if (kind == '~') {
      rule.trigger = FaultRule::Trigger::kProbability;
      try {
        std::size_t used = 0;
        rule.probability = std::stod(arg, &used);
        if (used != arg.size() || !std::isfinite(rule.probability) ||
            rule.probability < 0.0 || rule.probability > 1.0) {
          return Status::InvalidInput("bad probability '" + arg + "' for '" +
                                      rule.site + "' (must be in [0, 1])");
        }
      } catch (const std::exception&) {
        return Status::InvalidInput("bad probability '" + arg + "' for '" +
                                    rule.site + "' (must be in [0, 1])");
      }
    } else {
      rule.trigger = kind == '@' ? FaultRule::Trigger::kNthHit
                                 : FaultRule::Trigger::kEveryK;
      Expected<std::uint64_t> n = parse_u64(
          arg, kind == '@' ? "hit number" : "period");
      if (!n.ok()) {
        return std::move(n).take_status().with_context("fault rule '" +
                                                       entry + "'");
      }
      if (*n == 0) {
        return Status::InvalidInput("fault rule '" + entry +
                                    "': hit numbers and periods are 1-based");
      }
      rule.n = *n;
    }
    plan.rules.push_back(std::move(rule));
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultRule& r : rules) {
    if (!out.empty()) out += ';';
    out += r.site;
    switch (r.trigger) {
      case FaultRule::Trigger::kNthHit:
        out += '@' + std::to_string(r.n);
        break;
      case FaultRule::Trigger::kEveryK:
        out += '%' + std::to_string(r.n);
        break;
      case FaultRule::Trigger::kProbability: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "~%g", r.probability);
        out += buf;
        break;
      }
    }
  }
  if (seed != 0) {
    if (!out.empty()) out += ';';
    out += "seed=" + std::to_string(seed);
  }
  return out;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), seed_(plan_.seed) {
  auto& registry = MetricsRegistry::global();
  hits_counter_ = &registry.counter("fault.hits");
  fires_counter_ = &registry.counter("fault.fires");
  // Pre-create every canonical site so should_fail never mutates the map
  // (lock-free concurrent lookups). Unknown sites cannot reach us: parse()
  // validates, and instrumented code uses the fault_sites constants.
  for (const std::string_view s : all_fault_sites()) {
    Site& site = sites_[std::string(s)];
    site.fire_counter =
        &registry.counter("fault.fires." + std::string(s));
  }
  for (const FaultRule& r : plan_.rules) {
    sites_[r.site].rules.push_back(&r);
  }
}

FaultInjector::Site& FaultInjector::site_entry(std::string_view site) {
  const auto it = sites_.find(site);
  if (it != sites_.end()) return it->second;
  // Unregistered site names only appear in tests poking the injector
  // directly; give them a slot so stats() still reports them.
  Site& s = sites_[std::string(site)];
  s.fire_counter =
      &MetricsRegistry::global().counter("fault.fires." + std::string(site));
  return s;
}

bool FaultInjector::should_fail(std::string_view site) {
  Site& entry = site_entry(site);
  const std::uint64_t hit =
      entry.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  if (hits_counter_ == nullptr) {  // default-constructed (planless) injector
    hits_counter_ = &MetricsRegistry::global().counter("fault.hits");
    fires_counter_ = &MetricsRegistry::global().counter("fault.fires");
  }
  hits_counter_->add(1);
  bool fires = false;
  for (const FaultRule* r : entry.rules) {
    switch (r->trigger) {
      case FaultRule::Trigger::kNthHit:
        fires = hit == r->n;
        break;
      case FaultRule::Trigger::kEveryK:
        fires = hit % r->n == 0;
        break;
      case FaultRule::Trigger::kProbability:
        fires = unit_draw(seed_, site, hit) < r->probability;
        break;
    }
    if (fires) break;
  }
  if (fires) {
    entry.fires.fetch_add(1, std::memory_order_relaxed);
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    fires_counter_->add(1);
    entry.fire_counter->add(1);
    flight_record("fault", std::string(site) + " fired on hit " +
                               std::to_string(hit));
    maybe_dump_postmortem("fault", std::string(site));
  }
  return fires;
}

std::map<std::string, FaultInjector::SiteStats> FaultInjector::stats() const {
  std::map<std::string, SiteStats> out;
  for (const auto& [name, site] : sites_) {
    SiteStats s;
    s.hits = site.hits.load(std::memory_order_relaxed);
    s.fires = site.fires.load(std::memory_order_relaxed);
    if (s.hits != 0 || !site.rules.empty()) out.emplace(name, s);
  }
  return out;
}

void record_fault_fire(std::string_view site) {
  auto& registry = MetricsRegistry::global();
  registry.counter("fault.fires").add(1);
  registry.counter("fault.fires." + std::string(site)).add(1);
  flight_record("fault", std::string(site) + " fired");
  maybe_dump_postmortem("fault", std::string(site));
}

}  // namespace cdcs::support
