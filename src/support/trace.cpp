#include "support/trace.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "support/obs_context.hpp"

namespace cdcs::support {
namespace {

std::atomic<TraceSink*> g_sink{nullptr};
std::atomic<std::uint32_t> g_next_thread_id{0};

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* phase_string(TraceEvent::Phase phase) {
  switch (phase) {
    case TraceEvent::Phase::kBegin:
      return "B";
    case TraceEvent::Phase::kEnd:
      return "E";
    case TraceEvent::Phase::kCounter:
      return "C";
    case TraceEvent::Phase::kInstant:
      return "i";
  }
  return "i";
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\":";
  write_json_string(os, e.name);
  os << ",\"cat\":";
  write_json_string(os, *e.category ? e.category : "synth");
  os << ",\"ph\":\"" << phase_string(e.phase) << "\"";
  os << ",\"ts\":" << e.timestamp_us;
  os << ",\"pid\":1,\"tid\":" << e.thread_id;
  // The scope path (if any) rides in "args" next to the event's own
  // payload, so Perfetto shows attribution on hover and queries can group
  // by args.scope. The preformatted args object ("{...}") is spliced in
  // after the scope key.
  auto write_args_with_scope = [&os, &e] {
    os << ",\"args\":{\"scope\":";
    write_json_string(os, e.scope);
    if (e.args.size() > 2) {
      os << "," << std::string_view(e.args).substr(1, e.args.size() - 2);
    }
    os << "}";
  };
  if (e.phase == TraceEvent::Phase::kCounter) {
    // Counter payloads live in "args"; Perfetto draws one track per key.
    os << ",\"args\":{\"value\":" << e.value;
    if (!e.scope.empty()) {
      os << ",\"scope\":";
      write_json_string(os, e.scope);
    }
    os << "}";
  } else if (e.phase == TraceEvent::Phase::kInstant) {
    os << ",\"s\":\"t\"";  // thread-scoped instant
    if (!e.scope.empty()) {
      write_args_with_scope();
    } else if (!e.args.empty()) {
      os << ",\"args\":" << e.args;
    }
  } else if (e.phase == TraceEvent::Phase::kBegin) {
    if (!e.scope.empty()) {
      write_args_with_scope();
    } else if (!e.args.empty()) {
      os << ",\"args\":" << e.args;
    }
  }
  os << "}";
}

}  // namespace

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 16)), epoch_ns_(steady_ns()) {
  ring_.reserve(capacity_);
}

void TraceSink::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  wrapped_ = true;
  ++dropped_;
  ring_[head_] = std::move(event);
  head_ = (head_ + 1) % capacity_;
}

std::vector<TraceEvent> TraceSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  } else {
    out = ring_;
  }
  return out;
}

std::size_t TraceSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::size_t TraceSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::int64_t TraceSink::now_us() const {
  return (steady_ns() - epoch_ns_) / 1000;
}

void install_trace_sink(TraceSink* sink) {
  g_sink.store(sink, std::memory_order_release);
}

TraceSink* trace_sink() { return g_sink.load(std::memory_order_acquire); }

std::uint32_t trace_thread_id() {
  thread_local std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Span::Span(const char* name, const char* category, std::string args)
    : sink_(trace_sink()), name_(name), category_(category) {
  if (sink_ == nullptr) return;
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.phase = TraceEvent::Phase::kBegin;
  e.timestamp_us = sink_->now_us();
  e.thread_id = trace_thread_id();
  e.args = std::move(args);
  e.scope = current_obs_scope_path();
  sink_->record(std::move(e));
}

Span::~Span() {
  if (sink_ == nullptr) return;
  TraceEvent e;
  e.name = name_;
  e.category = category_;
  e.phase = TraceEvent::Phase::kEnd;
  e.timestamp_us = sink_->now_us();
  e.thread_id = trace_thread_id();
  sink_->record(std::move(e));
}

void trace_counter(const char* name, double value, const char* category) {
  TraceSink* sink = trace_sink();
  if (sink == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kCounter;
  e.timestamp_us = sink->now_us();
  e.thread_id = trace_thread_id();
  e.value = value;
  e.scope = current_obs_scope_path();
  sink->record(std::move(e));
}

void trace_instant(const char* name, const char* category, std::string args) {
  TraceSink* sink = trace_sink();
  if (sink == nullptr) return;
  TraceEvent e;
  e.name = name;
  e.category = category;
  e.phase = TraceEvent::Phase::kInstant;
  e.timestamp_us = sink->now_us();
  e.thread_id = trace_thread_id();
  e.args = std::move(args);
  e.scope = current_obs_scope_path();
  sink->record(std::move(e));
}

ScopedTraceSession::ScopedTraceSession(std::size_t capacity)
    : sink_(capacity) {
  install_trace_sink(&sink_);
}

ScopedTraceSession::~ScopedTraceSession() { close(); }

void ScopedTraceSession::close() {
  if (!installed_) return;
  installed_ = false;
  if (trace_sink() == &sink_) install_trace_sink(nullptr);
}

std::size_t write_chrome_trace(std::ostream& os,
                               const std::vector<TraceEvent>& events) {
  // Balance begin/end pairs per thread so a ring-truncated stream still
  // exports as well-formed JSON with matched spans: an E whose B was
  // overwritten is dropped; a B still open at the end of the stream gets a
  // synthetic E stamped with the stream's final timestamp.
  std::vector<const TraceEvent*> keep;
  keep.reserve(events.size());
  // Per-thread stack of indices into `keep` holding open begins.
  std::vector<std::vector<std::size_t>> open;
  std::int64_t last_ts = 0;
  for (const TraceEvent& e : events) {
    last_ts = std::max(last_ts, e.timestamp_us);
    if (e.thread_id >= open.size()) open.resize(e.thread_id + 1);
    switch (e.phase) {
      case TraceEvent::Phase::kBegin:
        open[e.thread_id].push_back(keep.size());
        keep.push_back(&e);
        break;
      case TraceEvent::Phase::kEnd:
        if (open[e.thread_id].empty()) continue;  // orphan: begin overwritten
        open[e.thread_id].pop_back();
        keep.push_back(&e);
        break;
      default:
        keep.push_back(&e);
    }
  }

  std::size_t written = keep.size();
  for (const std::vector<std::size_t>& o : open) written += o.size();

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent* e : keep) {
    if (!first) os << ",";
    first = false;
    os << "\n";
    write_event(os, *e);
  }
  // Synthetic ends for spans the stream left open (deepest first so the
  // nesting closes inside-out per thread).
  for (std::uint32_t tid = 0; tid < open.size(); ++tid) {
    for (std::size_t i = open[tid].size(); i-- > 0;) {
      const TraceEvent* b = keep[open[tid][i]];
      TraceEvent e;
      e.name = b->name;
      e.category = b->category;
      e.phase = TraceEvent::Phase::kEnd;
      e.timestamp_us = last_ts;
      e.thread_id = tid;
      if (!first) os << ",";
      first = false;
      os << "\n";
      write_event(os, e);
    }
  }
  os << "\n]}\n";
  return written;
}

std::size_t write_chrome_trace(std::ostream& os, const TraceSink& sink) {
  return write_chrome_trace(os, sink.snapshot());
}

}  // namespace cdcs::support
