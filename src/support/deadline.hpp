// Wall-clock deadlines with cooperative cancellation for the synthesis
// pipeline. A Deadline is threaded (by value, copies share the cancel
// token) through candidate generation, the merging pricers, and the UCP
// branch-and-bound; each hot loop polls expired() and degrades gracefully
// instead of running unbounded (docs/robustness.md describes the ladder).
//
// expired() latches: once a Deadline has reported expiry it keeps doing so,
// so a caller observing "expired" mid-stage can rely on every later stage
// observing the same.
//
// Deterministic testing: expire_after_checks(n) builds a Deadline that
// ignores the clock and expires on the (n+1)-th expired() poll, so every
// degradation edge is unit-testable without timing races.
#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>

namespace cdcs::support {

/// Shared cancellation flag: copies observe (and trigger) the same cancel.
/// Safe to cancel() from another thread while a solver polls expired().
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: never expires (and polls are two branch instructions).
  Deadline() = default;

  static Deadline never() { return Deadline(); }

  static Deadline after(Clock::duration budget) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + budget;
    return d;
  }

  static Deadline after_ms(double ms) {
    return after(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms < 0.0 ? 0.0 : ms)));
  }

  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = when;
    return d;
  }

  /// Fault injection: expires on the (n+1)-th expired() call regardless of
  /// the clock. n = 0 expires on the first poll.
  static Deadline expire_after_checks(long n) {
    Deadline d;
    d.checks_left_ = n < 0 ? 0 : n;
    return d;
  }

  /// Attaches a cooperative cancellation token; cancel() makes every copy
  /// of this Deadline report expiry at its next poll.
  Deadline& attach(CancelToken token) {
    cancel_ = std::move(token);
    has_token_ = true;
    return *this;
  }

  bool unlimited() const {
    return !has_deadline_ && !has_token_ && checks_left_ < 0 && !expired_;
  }

  bool expired() const {
    if (expired_) return true;
    if (checks_left_ >= 0) {
      if (checks_left_ == 0) {
        expired_ = true;
        return true;
      }
      --checks_left_;
    }
    if (has_token_ && cancel_.cancelled()) {
      expired_ = true;
      return true;
    }
    if (has_deadline_ && Clock::now() >= at_) {
      expired_ = true;
      return true;
    }
    return false;
  }

  /// Milliseconds left; +infinity when unlimited, 0 when expired. Does not
  /// consume a fault-injection poll.
  double remaining_ms() const {
    if (expired_) return 0.0;
    if (!has_deadline_) {
      return std::numeric_limits<double>::infinity();
    }
    const auto left = std::chrono::duration<double, std::milli>(
        at_ - Clock::now());
    return left.count() < 0.0 ? 0.0 : left.count();
  }

 private:
  Clock::time_point at_{};
  CancelToken cancel_{};
  bool has_deadline_{false};
  bool has_token_{false};
  /// Fault-injection poll budget; -1 = disabled. Mutable so const hot-path
  /// polls can count; copies take a snapshot of the remaining budget.
  mutable long checks_left_{-1};
  mutable bool expired_{false};
};

}  // namespace cdcs::support
