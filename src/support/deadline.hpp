// Wall-clock deadlines with cooperative cancellation for the synthesis
// pipeline. A Deadline is threaded (by value, copies share the cancel
// token) through candidate generation, the merging pricers, and the UCP
// branch-and-bound; each hot loop polls expired() and degrades gracefully
// instead of running unbounded (docs/robustness.md describes the ladder).
//
// THREAD SAFETY: a single Deadline object may be polled concurrently from
// many workers (the parallel pricing stage shares one by const reference).
// The expiry latch and the fault-injection poll counter are atomics, so
// concurrent polls never tear the count, and the optional expiry callback
// fires exactly once across all copies and threads (docs/performance.md).
//
// expired() latches: once a Deadline has reported expiry it keeps doing so,
// so a caller observing "expired" mid-stage can rely on every later stage
// observing the same.
//
// Deterministic testing: expire_after_checks(n) builds a Deadline that
// ignores the clock and expires on the (n+1)-th expired() poll, so every
// degradation edge is unit-testable without timing races.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <limits>
#include <memory>
#include <utility>

namespace cdcs::support {

/// Shared cancellation flag: copies observe (and trigger) the same cancel.
/// Safe to cancel() from another thread while a solver polls expired().
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default: never expires (and polls are two branch instructions).
  Deadline() = default;

  /// Copies snapshot the latch and the remaining poll budget; the cancel
  /// token and the expiry callback remain SHARED with the source.
  Deadline(const Deadline& other)
      : at_(other.at_),
        cancel_(other.cancel_),
        on_expiry_(other.on_expiry_),
        has_deadline_(other.has_deadline_),
        has_token_(other.has_token_),
        has_checks_(other.has_checks_),
        checks_left_(other.checks_left_.load(std::memory_order_relaxed)),
        expired_(other.expired_.load(std::memory_order_relaxed)) {}

  Deadline& operator=(const Deadline& other) {
    if (this != &other) {
      at_ = other.at_;
      cancel_ = other.cancel_;
      on_expiry_ = other.on_expiry_;
      has_deadline_ = other.has_deadline_;
      has_token_ = other.has_token_;
      has_checks_ = other.has_checks_;
      checks_left_.store(other.checks_left_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      expired_.store(other.expired_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }
    return *this;
  }

  static Deadline never() { return Deadline(); }

  static Deadline after(Clock::duration budget) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + budget;
    return d;
  }

  static Deadline after_ms(double ms) {
    return after(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::milli>(ms < 0.0 ? 0.0 : ms)));
  }

  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = when;
    return d;
  }

  /// Fault injection: expires on the (n+1)-th expired() call regardless of
  /// the clock. n = 0 expires on the first poll. Polls from any thread
  /// consume the shared budget of THIS object; copies snapshot what is left.
  static Deadline expire_after_checks(long n) {
    Deadline d;
    d.has_checks_ = true;
    d.checks_left_.store(n < 0 ? 0 : n, std::memory_order_relaxed);
    return d;
  }

  /// Attaches a cooperative cancellation token; cancel() makes every copy
  /// of this Deadline report expiry at its next poll.
  Deadline& attach(CancelToken token) {
    cancel_ = std::move(token);
    has_token_ = true;
    return *this;
  }

  /// Registers a callback invoked exactly once, by whichever poll (from
  /// whichever thread or copy) first observes expiry. Copies made AFTER
  /// registration share the once-only flag, so the callback cannot double-
  /// fire across copies; re-registering installs a fresh callback with a
  /// fresh flag. Registering on an already-expired deadline fires the
  /// callback immediately (polls short-circuit on the latch and would
  /// otherwise never reach it). The callback must be cheap and must not
  /// poll the deadline itself.
  Deadline& on_expiry(std::function<void()> callback) {
    on_expiry_ = std::make_shared<ExpiryCallback>();
    on_expiry_->fn = std::move(callback);
    if (expired_.load(std::memory_order_relaxed) &&
        !on_expiry_->fired.exchange(true)) {
      on_expiry_->fn();
    }
    return *this;
  }

  bool unlimited() const {
    return !has_deadline_ && !has_token_ && !has_checks_ &&
           !expired_.load(std::memory_order_relaxed);
  }

  /// True when some earlier poll of this copy already observed expiry.
  /// Never consumes a fault-injection poll and never advances the latch --
  /// the poll-free query for "did a pricer bail out on us?" decisions
  /// (e.g. whether a pricing result is safe to memoize).
  bool latched() const { return expired_.load(std::memory_order_relaxed); }

  bool expired() const {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (has_checks_) {
      // fetch_sub gives each concurrent poller a distinct ticket; exactly
      // the poll holding ticket 0 (the (n+1)-th overall) trips the latch,
      // and the count can go negative but never tears.
      if (checks_left_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
        return latch();
      }
    }
    if (has_token_ && cancel_.cancelled()) return latch();
    if (has_deadline_ && Clock::now() >= at_) return latch();
    return false;
  }

  /// Milliseconds left; +infinity when unlimited, 0 when expired. Does not
  /// consume a fault-injection poll.
  double remaining_ms() const {
    if (expired_.load(std::memory_order_relaxed)) return 0.0;
    if (!has_deadline_) {
      return std::numeric_limits<double>::infinity();
    }
    const auto left = std::chrono::duration<double, std::milli>(
        at_ - Clock::now());
    return left.count() < 0.0 ? 0.0 : left.count();
  }

 private:
  /// Once-only callback state shared by all copies of a Deadline.
  struct ExpiryCallback {
    std::function<void()> fn;
    std::atomic<bool> fired{false};
  };

  /// Sets the expiry latch and fires the shared callback exactly once
  /// (first latch across all copies/threads wins). Always returns true.
  bool latch() const {
    expired_.store(true, std::memory_order_relaxed);
    if (on_expiry_ && !on_expiry_->fired.exchange(true)) {
      on_expiry_->fn();
    }
    return true;
  }

  Clock::time_point at_{};
  CancelToken cancel_{};
  std::shared_ptr<ExpiryCallback> on_expiry_{};
  bool has_deadline_{false};
  bool has_token_{false};
  bool has_checks_{false};
  /// Fault-injection poll budget; only meaningful when has_checks_. Mutable
  /// so const hot-path polls can count; copies take a snapshot.
  mutable std::atomic<long> checks_left_{-1};
  mutable std::atomic<bool> expired_{false};
};

}  // namespace cdcs::support
