// Fixed-size worker pool for the synthesis engine's embarrassingly parallel
// stages (per-subset candidate pricing, bench sweeps).
//
// Design constraints, in order:
//   1. DETERMINISM. Parallel users of the pool must produce bit-identical
//      results to a serial run. The pool therefore never reorders *results*:
//      parallel_map_ordered() evaluates f(0..n-1) concurrently but hands the
//      results back in index order, so any fold over them is the same fold
//      the serial loop performs.
//   2. Cooperative cancellation. Tasks receive no kill signal; they are
//      expected to poll a support::Deadline (whose atomic latch is safe to
//      share across workers) and return early. The pool only guarantees that
//      every submitted task runs to completion before the destructor joins.
//   3. No dependency surface. Plain std::thread + mutex/condvar; no atomics
//      tricks beyond a stop flag, no lock-free queue -- the tasks this pool
//      carries are millisecond-scale placement solves, so queue overhead is
//      noise.
//
// Observability (docs/observability.md): submit() samples the queue depth
// into the thread_pool.queue_depth gauge, and each executed task gets a
// "task" span plus a thread_pool.task.us latency histogram sample -- all
// gated on tracing_enabled()/timing_enabled(), so an uninstrumented run
// reads no clock and takes no extra locks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/obs_context.hpp"
#include "support/trace.hpp"

namespace cdcs::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1). The pool is fixed-size for its
  /// whole lifetime; sizing policy (hardware_concurrency, --threads) is the
  /// caller's job via resolve_thread_count().
  explicit ThreadPool(std::size_t workers)
      : queue_depth_(
            MetricsRegistry::global().gauge("thread_pool.queue_depth")),
        task_us_(MetricsRegistry::global().histogram("thread_pool.task.us")) {
    if (workers == 0) workers = 1;
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  std::size_t size() const { return threads_.size(); }

  /// Enqueues a task; the future carries its result (or exception).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    std::size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Carry the submitter's observability scope onto the worker so the
      // task's spans/counters stay attributed to the scope that fanned the
      // work out. A null handle install/restore is two shared_ptr moves --
      // scheduling and results are unchanged.
      queue_.emplace([task, scope = current_obs_scope()] {
        ObsScopeGuard scope_guard(std::move(scope));
        (*task)();
      });
      depth = queue_.size();
    }
    // High-water mark of pending (not yet dequeued) tasks. One relaxed
    // atomic; never observed by the tasks themselves.
    queue_depth_.set_max(static_cast<double>(depth));
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        job = std::move(queue_.front());
        queue_.pop();
      }
      {
        ScopedTimer span("task", "thread_pool", &task_us_);
        job();
      }
    }
  }

  Gauge& queue_depth_;    ///< registry-owned; see class comment
  Histogram& task_us_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stop_{false};
  std::vector<std::thread> threads_;
};

/// Resolves a user-facing thread-count knob: n >= 1 is taken literally,
/// n <= 0 means "all hardware threads" (never less than 1).
inline std::size_t resolve_thread_count(int n) {
  if (n > 0) return static_cast<std::size_t>(n);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Deterministic ordered map: computes f(i) for i in [0, n) and returns the
/// results IN INDEX ORDER. With a null/single-thread pool the calls happen
/// inline (zero overhead, and exactly the serial loop); otherwise each call
/// is a pool task and the caller blocks on the futures in order, so the
/// reduction order downstream is identical either way. Exceptions from f
/// propagate to the caller (rethrown from the first failing index).
template <typename F>
auto parallel_map_ordered(ThreadPool* pool, std::size_t n, F&& f)
    -> std::vector<std::invoke_result_t<F, std::size_t>> {
  using R = std::invoke_result_t<F, std::size_t>;
  std::vector<R> out;
  out.reserve(n);
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) out.push_back(f(i));
    return out;
  }
  std::vector<std::future<R>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool->submit([&f, i] { return f(i); }));
  }
  for (std::future<R>& fut : futures) out.push_back(fut.get());
  return out;
}

}  // namespace cdcs::support
