// Structured diagnostics for the synthesis pipeline: a Status code plus a
// message-context chain and the source location of the original failure,
// and an Expected<T> carrier so entry points can return either a value or a
// diagnosis without throwing across the public API boundary.
//
// Conventions (see docs/robustness.md):
//   * kParseError        -- malformed textual input (line-numbered message);
//   * kInvalidInput      -- structurally invalid graph/library (NaN
//                           bandwidth, empty library, duplicate arcs, ...);
//   * kDeadlineExceeded  -- a wall-clock budget expired before any usable
//                           result existed (the synthesizer usually degrades
//                           instead of returning this; see DegradationReport);
//   * kInfeasible        -- no valid implementation exists for the instance;
//   * kInternal          -- an invariant broke: a bug in this code, never a
//                           user error.
// Each code maps to a stable process exit status via exit_code() so shell
// callers can triage failures without parsing messages.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace cdcs::support {

enum class ErrorCode {
  kOk = 0,
  kParseError,
  kInvalidInput,
  kDeadlineExceeded,
  kInfeasible,
  kInternal,
};

constexpr std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kParseError:
      return "parse-error";
    case ErrorCode::kInvalidInput:
      return "invalid-input";
    case ErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case ErrorCode::kInfeasible:
      return "infeasible";
    case ErrorCode::kInternal:
      return "internal";
  }
  return "unknown";
}

/// Stable CLI exit statuses (documented in docs/robustness.md). 0 is
/// success; 1 is reserved for "ran but the result failed validation"; 2 for
/// usage errors -- neither is produced by a Status.
constexpr int exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return 0;
    case ErrorCode::kParseError:
      return 3;
    case ErrorCode::kInvalidInput:
      return 4;
    case ErrorCode::kDeadlineExceeded:
      return 5;
    case ErrorCode::kInfeasible:
      return 6;
    case ErrorCode::kInternal:
      return 7;
  }
  return 7;
}

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;

  static Status Ok() { return Status(); }

  static Status Error(
      ErrorCode code, std::string message,
      std::source_location loc = std::source_location::current()) {
    Status s;
    s.code_ = code == ErrorCode::kOk ? ErrorCode::kInternal : code;
    s.message_ = std::move(message);
    s.file_ = loc.file_name();
    s.line_ = static_cast<int>(loc.line());
    return s;
  }

  static Status ParseError(
      std::string message,
      std::source_location loc = std::source_location::current()) {
    return Error(ErrorCode::kParseError, std::move(message), loc);
  }
  static Status InvalidInput(
      std::string message,
      std::source_location loc = std::source_location::current()) {
    return Error(ErrorCode::kInvalidInput, std::move(message), loc);
  }
  static Status DeadlineExceeded(
      std::string message,
      std::source_location loc = std::source_location::current()) {
    return Error(ErrorCode::kDeadlineExceeded, std::move(message), loc);
  }
  static Status Infeasible(
      std::string message,
      std::source_location loc = std::source_location::current()) {
    return Error(ErrorCode::kInfeasible, std::move(message), loc);
  }
  static Status Internal(
      std::string message,
      std::source_location loc = std::source_location::current()) {
    return Error(ErrorCode::kInternal, std::move(message), loc);
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }

  /// The innermost failure message, without context or location.
  const std::string& message() const { return message_; }

  /// Context notes, innermost first (the order they were attached while the
  /// failure propagated outward).
  const std::vector<std::string>& context() const { return context_; }

  const char* file() const { return file_; }
  int line() const { return line_; }

  /// Attaches an outer context note ("while parsing 'x.graph'"). Chainable.
  Status& add_context(std::string note) & {
    if (!ok()) context_.push_back(std::move(note));
    return *this;
  }
  Status&& with_context(std::string note) && {
    add_context(std::move(note));
    return std::move(*this);
  }

  /// "[parse-error] reading file: line 3: bad bandwidth 'x' (io/text.cpp:12)"
  std::string to_string() const {
    if (ok()) return "ok";
    std::string out = "[";
    out += support::to_string(code_);
    out += "] ";
    for (auto it = context_.rbegin(); it != context_.rend(); ++it) {
      out += *it;
      out += ": ";
    }
    out += message_;
    if (file_ != nullptr && *file_ != '\0') {
      out += " (";
      out += file_;
      out += ":";
      out += std::to_string(line_);
      out += ")";
    }
    return out;
  }

 private:
  ErrorCode code_{ErrorCode::kOk};
  std::string message_;
  std::vector<std::string> context_;
  const char* file_{""};
  int line_{0};
};

/// Thrown only by Expected<T>::value() -- an explicit caller opt-in for
/// contexts (tests, examples) where failure is fatal anyway. Library entry
/// points never throw it.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a T or a non-OK Status. Implicitly constructible from both so
/// `return Status::ParseError(...)` and `return value` both work.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : payload_(std::in_place_index<0>, std::move(value)) {}
  Expected(Status status)
      : payload_(std::in_place_index<1>, std::move(status)) {
    if (std::get<1>(payload_).ok()) {
      payload_.template emplace<1>(Status::Internal(
          "Expected constructed from an OK status without a value"));
    }
  }

  bool ok() const { return payload_.index() == 0; }
  explicit operator bool() const { return ok(); }

  /// OK status when holding a value.
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<1>(payload_);
  }

  /// Moves the status out (for `return std::move(e).status().with_context(...)`).
  Status&& take_status() && { return std::move(std::get<1>(payload_)); }

  // Unchecked accessors (UB when !ok(), like std::expected).
  T& operator*() & { return std::get<0>(payload_); }
  const T& operator*() const& { return std::get<0>(payload_); }
  T&& operator*() && { return std::move(std::get<0>(payload_)); }
  T* operator->() { return &std::get<0>(payload_); }
  const T* operator->() const { return &std::get<0>(payload_); }

  /// Checked accessor: throws StatusError when holding an error.
  T& value() & {
    if (!ok()) throw StatusError(std::get<1>(payload_));
    return std::get<0>(payload_);
  }
  const T& value() const& {
    if (!ok()) throw StatusError(std::get<1>(payload_));
    return std::get<0>(payload_);
  }
  T&& value() && {
    if (!ok()) throw StatusError(std::get<1>(payload_));
    return std::move(std::get<0>(payload_));
  }

  T value_or(T fallback) && {
    return ok() ? std::move(std::get<0>(payload_)) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace cdcs::support
