#include "support/obs_context.hpp"

#include <utility>

namespace cdcs::support {
namespace {

/// The calling thread's scope stack top. A plain thread_local shared_ptr:
/// reading it is address arithmetic, no lock, no atomic RMW.
thread_local ObsScopeHandle t_current_scope;

const std::string& empty_path() {
  static const std::string empty;
  return empty;
}

}  // namespace

ObsScopeNode::ObsScopeNode(std::string label,
                           std::shared_ptr<const ObsScopeNode> parent)
    : label_(std::move(label)), parent_(std::move(parent)) {
  if (parent_ == nullptr) {
    path_ = label_;
  } else {
    path_.reserve(parent_->path().size() + 1 + label_.size());
    path_ = parent_->path();
    path_ += '/';
    path_ += label_;
  }
}

ObsScopeHandle current_obs_scope() { return t_current_scope; }

const std::string& current_obs_scope_path() {
  const ObsScopeNode* node = t_current_scope.get();
  return node == nullptr ? empty_path() : node->path();
}

ObsContext::ObsContext(std::string label)
    : node_(std::make_shared<ObsScopeNode>(std::move(label),
                                           t_current_scope)),
      prev_(t_current_scope) {
  t_current_scope = node_;
}

ObsContext::ObsContext(std::string label, CaptureMetricsBaselineTag)
    : ObsContext(std::move(label)) {
  baseline_ = std::make_unique<MetricsSnapshot>(
      MetricsRegistry::global().snapshot());
}

ObsContext::~ObsContext() { t_current_scope = prev_; }

MetricsSnapshot ObsContext::delta() const {
  if (baseline_ == nullptr) return MetricsSnapshot{};
  return MetricsRegistry::global().snapshot().delta_since(*baseline_);
}

ObsScopeGuard::ObsScopeGuard(ObsScopeHandle scope)
    : prev_(std::move(t_current_scope)) {
  t_current_scope = std::move(scope);
}

ObsScopeGuard::~ObsScopeGuard() { t_current_scope = std::move(prev_); }

}  // namespace cdcs::support
