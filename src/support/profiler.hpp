// In-process profiler: aggregate span statistics per (scope, span-name),
// derived entirely from a captured trace event stream at export time
// (docs/observability.md).
//
// There is deliberately NO hot-path machinery here: the trace layer already
// records every span begin/end with timestamps and scopes, so the profile
// is a pure function of a TraceSink snapshot -- build_profile() replays the
// stream with the same per-thread stack discipline the Chrome exporter
// uses (orphan ends dropped, still-open begins closed at the stream's last
// timestamp) and aggregates:
//   * count        -- completed span instances
//   * total_us     -- inclusive wall time (sum over instances)
//   * self_us      -- total_us minus time spent in same-thread child spans
//   * max_us       -- largest single instance
//   * buckets      -- fixed latency histogram (Histogram::latency_us_bounds)
// Span COUNTS are deterministic for a fixed serial workload, which is what
// bench_perf_summary's `profile` section pins; timings are machine noise
// and are never diffed.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/trace.hpp"

namespace cdcs::support {

/// Aggregated statistics for one (scope, span-name) pair.
struct ProfileEntry {
  std::string scope;  ///< ObsContext path at span begin ("" = unscoped)
  std::string name;   ///< span name
  std::uint64_t count{0};
  std::int64_t total_us{0};  ///< inclusive
  std::int64_t self_us{0};   ///< exclusive of same-thread children
  std::int64_t max_us{0};
  std::vector<std::uint64_t> buckets;  ///< per latency bucket, +inf last
};

/// Upper bounds (microseconds) of the profile latency buckets; the +inf
/// overflow bucket is implicit. Shared with Histogram's default bounds so
/// the profile and the *.us histograms bucket identically.
const std::vector<double>& profile_bucket_bounds();

/// Aggregates `events` (a TraceSink snapshot, emission order) into profile
/// entries sorted by (scope, name) -- a deterministic key order, so the
/// JSON below is diffable.
std::vector<ProfileEntry> build_profile(
    const std::vector<TraceEvent>& events);

/// Convenience: snapshot + aggregate.
std::vector<ProfileEntry> build_profile(const TraceSink& sink);

/// {"buckets_us": [...], "entries": [{"scope": ..., "name": ...,
///  "count": N, "total_us": T, "self_us": S, "max_us": M,
///  "buckets": [...]}]} -- entries in (scope, name) order.
void write_profile_json(std::ostream& os,
                        const std::vector<ProfileEntry>& entries);

}  // namespace cdcs::support
