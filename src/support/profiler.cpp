#include "support/profiler.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "support/metrics.hpp"

namespace cdcs::support {
namespace {

std::size_t bucket_index(const std::vector<double>& bounds, double v) {
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (v <= bounds[i]) return i;
  }
  return bounds.size();  // +inf overflow bucket
}

/// One still-open span instance on a thread's replay stack.
struct Frame {
  const char* name;
  const std::string* scope;  ///< points into the event that opened it
  std::int64_t begin_us;
  std::int64_t child_us{0};  ///< inclusive time of completed children
};

}  // namespace

const std::vector<double>& profile_bucket_bounds() {
  static const std::vector<double> bounds = Histogram::latency_us_bounds();
  return bounds;
}

std::vector<ProfileEntry> build_profile(
    const std::vector<TraceEvent>& events) {
  const std::vector<double>& bounds = profile_bucket_bounds();
  std::map<std::pair<std::string, std::string>, ProfileEntry> agg;
  std::vector<std::vector<Frame>> stacks;  // indexed by thread id
  std::int64_t last_ts = 0;

  auto close = [&](const Frame& f, std::int64_t end_us,
                   std::vector<Frame>& stack) {
    const std::int64_t dur = std::max<std::int64_t>(0, end_us - f.begin_us);
    ProfileEntry& entry = agg[{*f.scope, f.name}];
    if (entry.buckets.empty()) {
      entry.scope = *f.scope;
      entry.name = f.name;
      entry.buckets.assign(bounds.size() + 1, 0);
    }
    ++entry.count;
    entry.total_us += dur;
    entry.self_us += std::max<std::int64_t>(0, dur - f.child_us);
    entry.max_us = std::max(entry.max_us, dur);
    ++entry.buckets[bucket_index(bounds, static_cast<double>(dur))];
    if (!stack.empty()) stack.back().child_us += dur;
  };

  for (const TraceEvent& e : events) {
    last_ts = std::max(last_ts, e.timestamp_us);
    if (e.thread_id >= stacks.size()) stacks.resize(e.thread_id + 1);
    std::vector<Frame>& stack = stacks[e.thread_id];
    switch (e.phase) {
      case TraceEvent::Phase::kBegin: {
        Frame f;
        f.name = e.name;
        f.scope = &e.scope;
        f.begin_us = e.timestamp_us;
        stack.push_back(f);
        break;
      }
      case TraceEvent::Phase::kEnd: {
        if (stack.empty()) break;  // orphan: begin overwritten by the ring
        Frame f = stack.back();
        stack.pop_back();
        close(f, e.timestamp_us, stack);
        break;
      }
      default:
        break;  // counters/instants carry no duration
    }
  }

  // Spans the stream left open get a synthetic end at the last timestamp,
  // deepest first -- the same repair the Chrome exporter performs.
  for (std::vector<Frame>& stack : stacks) {
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      close(f, last_ts, stack);
    }
  }

  std::vector<ProfileEntry> out;
  out.reserve(agg.size());
  for (auto& [key, entry] : agg) out.push_back(std::move(entry));
  return out;  // std::map iteration == (scope, name) order
}

std::vector<ProfileEntry> build_profile(const TraceSink& sink) {
  return build_profile(sink.snapshot());
}

void write_profile_json(std::ostream& os,
                        const std::vector<ProfileEntry>& entries) {
  const std::vector<double>& bounds = profile_bucket_bounds();
  os << "{\"buckets_us\": [";
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (i != 0) os << ", ";
    os << bounds[i];
  }
  os << "], \"entries\": [";
  bool first = true;
  for (const ProfileEntry& e : entries) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"scope\": ";
    write_json_string(os, e.scope);
    os << ", \"name\": ";
    write_json_string(os, e.name);
    os << ", \"count\": " << e.count << ", \"total_us\": " << e.total_us
       << ", \"self_us\": " << e.self_us << ", \"max_us\": " << e.max_us
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < e.buckets.size(); ++i) {
      if (i != 0) os << ", ";
      os << e.buckets[i];
    }
    os << "]}";
  }
  os << "\n]}";
}

}  // namespace cdcs::support
