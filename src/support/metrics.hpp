// Metrics registry: counters, gauges, and fixed-bucket histograms with
// lock-free sharded hot paths, plus a flat-JSON exporter
// (docs/observability.md).
//
// Design:
//   * The PRIMITIVES (Counter/Gauge/Histogram) are freestanding objects a
//     subsystem can own directly -- e.g. synth::PricingCache holds its
//     hit/miss Counters as members, and its public Stats struct is a
//     snapshot of them (the single source of truth for cache accounting).
//   * The REGISTRY maps stable dotted names ("ucp.nodes_explored",
//     "synth.stage.cover.wall_us") to process-global instances;
//     MetricsRegistry::global() is what the pipeline instrumentation and
//     the --metrics-out exporter share. counter()/gauge()/histogram() are
//     get-or-create and return references with registry lifetime, so hot
//     paths resolve a name once and then touch only the primitive.
//   * Writes are wait-free on the hot path: each Counter/Histogram is
//     sharded into cache-line-padded atomics indexed by a per-thread slot,
//     so concurrent writers from the thread pool do not contend; snapshot()
//     sums the shards. Gauges are a single atomic (last-writer-wins).
//   * Deterministic-safe: recording a metric never branches on or feeds
//     back into any computation, so instrumented and uninstrumented runs
//     produce bit-identical results (pinned by tests/test_trace.cpp).
//
// Wall-time metrics: clock reads are NOT free, so duration instrumentation
// goes through ScopedTimer, which reads the clock only when timing has been
// enabled (set_timing_enabled, flipped on by --metrics-out/--report-perf
// and benches) or a trace sink is installed -- otherwise it is as inert as
// a disabled Span.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "support/trace.hpp"

namespace cdcs::support {

/// Number of independent write shards per counter/histogram. Threads map to
/// shards by their trace_thread_id, so the synthesis pool's workers (a
/// handful) virtually never collide on a cache line.
inline constexpr std::size_t kMetricShards = 16;

/// Monotonically increasing sum, written with relaxed sharded atomics.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const Shard& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static std::size_t shard_index() {
    return trace_thread_id() % kMetricShards;
  }
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kMetricShards> shards_{};
};

/// Last-writer-wins instantaneous value (queue depth, frontier size).
class Gauge {
 public:
  void set(double v) {
    bits_.store(encode(v), std::memory_order_relaxed);
  }
  /// Tracks the maximum of all set_max() calls (and plain set() resets it).
  void set_max(double v) {
    std::uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (decode(cur) < v &&
           !bits_.compare_exchange_weak(cur, encode(v),
                                        std::memory_order_relaxed)) {
    }
  }
  double value() const { return decode(bits_.load(std::memory_order_relaxed)); }
  void reset() { bits_.store(encode(0.0), std::memory_order_relaxed); }

 private:
  static std::uint64_t encode(double v);
  static double decode(std::uint64_t bits);
  std::atomic<std::uint64_t> bits_{0};
};

/// Fixed-bucket histogram: counts per upper-bound bucket plus sum/count
/// (so mean is exact even where buckets are coarse). Bucket bounds are set
/// at construction and immutable; values land in the first bucket whose
/// bound is >= v, or the implicit +inf overflow bucket.
class Histogram {
 public:
  /// `bounds` must be strictly increasing; empty means a single +inf bucket
  /// (the histogram degenerates to sum/count -- still useful for means).
  explicit Histogram(std::vector<double> bounds);

  /// Default latency buckets: powers-of-4 microseconds from 1us to ~17s.
  static std::vector<double> latency_us_bounds();

  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;          ///< upper bounds, +inf implicit
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
    std::uint64_t count{0};
    double sum{0.0};

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    // buckets + [count, sum-as-bits] appended; sized at construction.
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  };
  void add_sum(Shard& shard, double v);

  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// Everything the registry held at one instant, keyed by metric name.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// This snapshot minus `earlier`, counter- and histogram-wise (gauges
  /// keep their current value): the per-run view of an accumulating
  /// registry, what --report-perf prints for a single synthesis.
  MetricsSnapshot delta_since(const MetricsSnapshot& earlier) const;
};

/// Name -> metric map. get-or-create accessors hand out references that
/// live as long as the registry; hot paths should cache them.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// On first use creates the histogram with `bounds` (or the default
  /// latency buckets when omitted); later calls ignore `bounds`.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds = {});

  MetricsSnapshot snapshot() const;
  /// Zeroes every metric (for test isolation; production code never calls
  /// this -- per-run views use snapshot deltas instead).
  void reset();

  /// The process-global registry the pipeline instrumentation writes to.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Whether ScopedTimer reads the clock when no trace sink is installed.
/// Off by default: an untraced, un-metered run performs no timing syscalls.
void set_timing_enabled(bool enabled);
bool timing_enabled();

/// RAII wall-clock probe: opens a trace span AND (when timing is on)
/// records the elapsed microseconds into a histogram and/or counter on
/// destruction. Inert -- no clock read, no span -- when neither a trace
/// sink nor timing is enabled.
class ScopedTimer {
 public:
  /// Either sink may be null. `name`/`category` follow Span rules (static
  /// strings).
  ScopedTimer(const char* name, const char* category,
              Histogram* latency_hist = nullptr,
              Counter* wall_us_total = nullptr, std::string args = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  Counter* total_;
  std::int64_t start_ns_{0};  ///< 0 = inert
  Span span_;
};

/// Flat metrics JSON: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {"buckets": [[bound, count], ...], "count": N,
/// "sum": S}}}. Keys sorted (std::map), so output is diffable.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot);

}  // namespace cdcs::support
