// Deterministic fault-injection registry for robustness testing
// (docs/robustness.md).
//
// The pipeline, the incremental engine, and the journal are instrumented
// with NAMED FAULT SITES -- fixed strings like "io.journal.write" or
// "ucp.solve" marking one failure edge each. A FaultPlan arms rules against
// those sites (fire on the n-th hit, every k-th hit, or with a seeded
// probability per hit), and a FaultInjector evaluates the armed plan at
// every site consultation:
//
//     auto plan = support::FaultPlan::parse("engine.apply@2;ucp.solve~0.1;seed=7");
//     options.fault_injection.injector =
//         std::make_shared<support::FaultInjector>(std::move(plan.value()));
//
// Determinism: nth-hit and every-k rules depend only on the per-site hit
// counter; probability rules hash (seed, site, hit index) through a
// splitmix64 finalizer, so identical seed + plan => identical fault
// schedule, independent of wall clock or address layout. Hit counters are
// atomics, so sites polled from pool workers never tear (the SET of firing
// hit indices stays deterministic even when thread assignment varies).
//
// Accounting: every evaluation bumps "fault.hits" and every firing bumps
// "fault.fires" plus "fault.fires.<site>" in the global metrics registry
// (support/metrics.hpp), so traced runs show exactly which faults fired.
// The legacy synth::FaultInjection bools are shims over the same sites
// (synth/options.hpp maps each bool to its site and routes the fire through
// record_fault_fire), so bool-driven and plan-driven failures are counted
// identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hpp"

namespace cdcs::support {

class Counter;

/// The canonical compiled-in fault sites. Plans may only target these
/// (FaultPlan::parse rejects unknown names so typos fail loudly); the chaos
/// soak iterates all_fault_sites() to prove every edge is exercised.
namespace fault_sites {
inline constexpr std::string_view kJournalOpen = "io.journal.open";
inline constexpr std::string_view kJournalWrite = "io.journal.write";
inline constexpr std::string_view kJournalFsync = "io.journal.fsync";
inline constexpr std::string_view kEngineApply = "engine.apply";
inline constexpr std::string_view kEngineRecover = "engine.recover";
inline constexpr std::string_view kPricerMerge = "pricer.merge";
inline constexpr std::string_view kUcpSolve = "ucp.solve";
inline constexpr std::string_view kUcpIncumbent = "ucp.incumbent";
inline constexpr std::string_view kUcpGreedy = "ucp.greedy";
/// Consulted by the parallel B&B engines while draining the shared frontier
/// (once per round in kRounds, once per pop in kFreeRun). A firing kills
/// the consulting worker mid-solve; the solve degrades all-or-nothing to
/// its current incumbent (CoverStop::kAborted), never a torn one.
inline constexpr std::string_view kUcpFrontier = "ucp.frontier";
}  // namespace fault_sites

/// Every registered fault site, in a stable documented order.
const std::vector<std::string_view>& all_fault_sites();

/// One armed trigger against one site.
struct FaultRule {
  enum class Trigger {
    kNthHit,       ///< fire exactly once, on hit number `n` (1-based)
    kEveryK,       ///< fire on every k-th hit (hits k, 2k, 3k, ...)
    kProbability,  ///< fire each hit with seeded probability `p`
  };

  std::string site;
  Trigger trigger{Trigger::kNthHit};
  std::uint64_t n{1};      ///< kNthHit / kEveryK parameter; >= 1
  double probability{0.0};  ///< kProbability parameter; in [0, 1]
};

/// A parsed fault plan: the rules plus the seed probability rules hash with.
///
/// Spec syntax (the CLI --fault-plan argument): rules separated by ';' or
/// ',', each `site@n` (n-th hit), `site%k` (every k-th hit), or `site~p`
/// (probability p per hit), plus an optional `seed=N`:
///
///     io.journal.write@3;engine.apply%2;ucp.solve~0.25;seed=42
struct FaultPlan {
  std::vector<FaultRule> rules;
  std::uint64_t seed{0};

  bool empty() const { return rules.empty(); }

  /// Parses a --fault-plan spec. kInvalidInput on syntax errors, unknown
  /// sites (the diagnostic lists the registered ones), n < 1, or p outside
  /// [0, 1].
  static Expected<FaultPlan> parse(const std::string& spec);

  /// Canonical spec string; parse(to_string()) round-trips.
  std::string to_string() const;
};

/// Evaluates an armed FaultPlan at fault sites. Thread-safe: hit counters
/// are relaxed atomics, and the decision for a given (site, hit index) is a
/// pure function of the plan, so concurrent polls cannot make the schedule
/// diverge from the single-threaded one (per site, the set of firing hit
/// indices is identical).
///
/// Shared by design: synth::FaultInjection carries one by shared_ptr so the
/// engine, the pipeline, and the journal all consult the same counters.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan);

  /// Counts a hit at `site` and returns true when an armed rule fires.
  /// Sites with no armed rule still count hits (visible in stats()).
  bool should_fail(std::string_view site);

  struct SiteStats {
    std::uint64_t hits{0};
    std::uint64_t fires{0};
  };
  /// Per-site hit/fire totals for every site consulted or armed so far.
  std::map<std::string, SiteStats> stats() const;

  std::uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  struct Site {
    std::vector<const FaultRule*> rules;  ///< into plan_.rules; stable
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
    Counter* fire_counter{nullptr};  ///< global "fault.fires.<site>"
  };
  Site& site_entry(std::string_view site);

  FaultPlan plan_;
  std::uint64_t seed_{0};
  /// Cached global-registry counters: should_fail sits on the enumeration
  /// hot path when a plan targets pricer.merge, so the name lookups happen
  /// once, at arm time.
  Counter* hits_counter_{nullptr};
  Counter* fires_counter_{nullptr};
  /// All canonical sites are pre-created in the constructor, so hot-path
  /// lookups never mutate the map and need no lock.
  std::map<std::string, Site, std::less<>> sites_;
  std::atomic<std::uint64_t> total_fires_{0};
};

/// Books one fault firing at `site` in the global metrics registry
/// ("fault.fires" + "fault.fires.<site>"). FaultInjector does this
/// internally; the legacy FaultInjection bool shims call it directly so
/// bool-driven fires are counted the same way.
void record_fault_fire(std::string_view site);

}  // namespace cdcs::support
