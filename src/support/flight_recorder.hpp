// Flight recorder + postmortem artifacts: an always-on bounded ring of the
// most recent structured events (stage transitions, incumbent updates,
// degradation-ladder rungs, fault fires, journal appends, backend and
// portfolio outcomes), dumpable -- together with a metrics snapshot and the
// trace ring -- to one JSON artifact when something goes wrong
// (docs/observability.md).
//
// Unlike the trace layer, the recorder is ALWAYS on: the events it captures
// are rare (dozens per solve, not millions), so the cost of a mutex-guarded
// ring append at those sites is noise, and the payoff is that a crash,
// fault fire, or degraded exit can be explained after the fact without
// having re-run under --trace-out. Recording is write-only metadata --
// nothing reads the ring during a solve -- so results stay bit-identical.
//
// Postmortems. set_postmortem_dir() arms automatic dumps: the FIRST
// trigger (fault-injector fire, degraded exit, deadline expiry, abort)
// after arming -- or after reset_postmortem_latch() -- serializes the ring,
// a MetricsRegistry snapshot, and the installed trace ring (if any) to
// <dir>/postmortem_<seq>.json and latches, so one failing run yields
// exactly one artifact no matter how many triggers cascade afterwards.
// Suppressed triggers bump the postmortem.suppressed counter; successful
// dumps bump postmortem.dumps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace cdcs::support {

/// One recorded event. `kind` is a small closed vocabulary ("stage",
/// "ladder", "incumbent", "fault", "journal", "backend", "portfolio",
/// "postmortem"); `detail` is free-form human-readable text; `scope` is the
/// emitting thread's ObsContext path at record time ("" when unscoped).
struct FlightEvent {
  std::uint64_t seq{0};          ///< global emission order, never reused
  std::int64_t timestamp_us{0};  ///< monotonic since recorder creation
  std::uint32_t thread_id{0};    ///< trace_thread_id of the emitter
  const char* kind{""};          ///< static string; never null
  std::string detail;
  std::string scope;
};

/// Thread-safe fixed-capacity ring of FlightEvents; overwrites the oldest
/// when full (same never-OOM stance as TraceSink).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 512);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event; fills seq/timestamp/thread/scope itself. `kind`
  /// must be a static string.
  void record(const char* kind, std::string detail);

  /// The buffered events in emission order (oldest surviving first).
  std::vector<FlightEvent> snapshot() const;

  std::size_t capacity() const { return capacity_; }
  /// Events ever recorded (>= capacity() means the ring wrapped).
  std::uint64_t total_recorded() const;

  /// The process-global recorder all instrumentation writes to.
  static FlightRecorder& global();

 private:
  const std::size_t capacity_;
  const std::int64_t epoch_ns_;
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;
  std::size_t head_{0};
  bool wrapped_{false};
  std::uint64_t total_{0};
};

/// Appends to FlightRecorder::global(). The one-liner instrumentation
/// sites use.
void flight_record(const char* kind, std::string detail);

/// Serializes a full postmortem document to `os`:
///   {"postmortem": {trigger, detail, scope, timestamp_us},
///    "flight_recorder": {capacity, total_recorded, events: [...]},
///    "metrics": <write_metrics_json of the global registry>,
///    "trace": <Chrome trace document of the installed sink, or null>}
/// Usable directly by tests; the automatic trigger path below wraps it
/// with the directory/latch policy.
void dump_postmortem(std::ostream& os, const char* trigger,
                     const std::string& detail);

/// Arms automatic postmortem dumps into `dir` (which must exist) and
/// resets the one-shot latch. An empty dir disarms.
void set_postmortem_dir(std::string dir);

/// The armed directory ("" when disarmed).
std::string postmortem_dir();

/// Re-opens the one-shot latch so the NEXT trigger dumps again (what
/// chaos_driver calls between iterations).
void reset_postmortem_latch();

/// Trigger hook: if dumps are armed and the latch is open, writes
/// <dir>/postmortem_<seq>.json and latches, returning the path written.
/// Returns "" when disarmed, already latched (bumps
/// postmortem.suppressed), or the file could not be opened.
std::string maybe_dump_postmortem(const char* trigger,
                                  const std::string& detail);

}  // namespace cdcs::support
