// Standalone chaos soak for the durability layer (the CI chaos-smoke job's
// long-running half; tests/test_chaos.cpp is the in-suite version).
//
//   chaos_driver [--iterations N] [--seed S] [--threads T]
//                [--fault-plan SPEC] [--journal-dir DIR]
//                [--postmortem-dir DIR]
//
// Each iteration builds a journaled Engine session on the WAN instance,
// applies a few seeded random edit batches under an armed FaultPlan
// (rotating over every registered fault site unless --fault-plan pins
// one), and checks the session invariants after every apply:
//
//   * a failed apply leaves the graph byte-identical (all-or-nothing),
//   * the journal always reads back cleanly and replays to the live graph,
//   * a clean-options Engine::recover() agrees with the live session.
//
// Exits 0 when every iteration holds the invariants; 1 on the first
// violation (with the iteration, plan, and journal path on stderr, and the
// journal file left behind for the CI artifact upload); 2 on bad usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "commlib/standard_libraries.hpp"
#include "io/journal.hpp"
#include "io/text_format.hpp"
#include "model/delta.hpp"
#include "support/fault.hpp"
#include "support/flight_recorder.hpp"
#include "support/metrics.hpp"
#include "synth/engine.hpp"
#include "ucp/cover_solver.hpp"
#include "workloads/wan2002.hpp"

namespace {

using namespace cdcs;
using support::FaultInjector;
using support::FaultPlan;

struct Args {
  int iterations = 200;
  std::uint32_t seed = 0xC0FFEE;
  int threads = 2;
  std::string fault_plan;  // empty = rotate over all registered sites
  std::string journal_dir = "/tmp";
  std::string postmortem_dir;  // empty = no postmortem dumps
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--iterations N] [--seed S] [--threads T]"
               " [--fault-plan SPEC] [--journal-dir DIR]"
               " [--postmortem-dir DIR]\n"
               "fault-plan SPEC: 'site@n | site%k | site~p' rules joined"
               " with ';', optional 'seed=N' (docs/robustness.md)\n";
  return 2;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : nullptr;
    if (!v) return false;
    ++i;
    if (flag == "--iterations") {
      args.iterations = std::atoi(v);
    } else if (flag == "--seed") {
      args.seed = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag == "--threads") {
      args.threads = std::atoi(v);
    } else if (flag == "--fault-plan") {
      args.fault_plan = v;
    } else if (flag == "--journal-dir") {
      args.journal_dir = v;
    } else if (flag == "--postmortem-dir") {
      args.postmortem_dir = v;
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return false;
    }
  }
  return args.iterations > 0 && args.threads > 0;
}

std::string graph_bytes(const model::ConstraintGraph& cg) {
  return io::write_constraint_graph(cg);
}

/// Seeded valid-by-construction edit batches (mirrors the test suite's
/// generators; kept local so the driver links against the library only).
class ChaosGen {
 public:
  explicit ChaosGen(std::uint32_t seed) : rng_(seed) {}

  model::Delta next_batch(model::ConstraintGraph& shadow) {
    model::Delta batch;
    const int n = 1 + static_cast<int>(rng_() % 2);
    for (int i = 0; i < n; ++i) {
      model::Delta one;
      one.ops.push_back(next_op(shadow));
      if (!model::apply_delta(shadow, one).ok()) {
        std::cerr << "internal: generated an invalid op\n";
        std::abort();
      }
      batch.ops.push_back(std::move(one.ops.front()));
    }
    return batch;
  }

 private:
  model::EditOp next_op(const model::ConstraintGraph& shadow) {
    const std::vector<model::VertexId> ports = shadow.ports();
    while (true) {
      switch (rng_() % 4) {
        case 0: {
          const model::ArcId a{
              static_cast<std::uint32_t>(rng_() % shadow.num_channels())};
          return model::SetBandwidthOp{
              shadow.channel(a).name,
              1.0 + static_cast<double>(rng_() % 390) / 10.0};
        }
        case 1:
        case 2: {
          const model::VertexId v = ports[rng_() % ports.size()];
          const geom::Point2D p = shadow.port(v).position;
          return model::MovePortOp{shadow.port(v).name,
                                   {p.x + jitter(), p.y + jitter()}};
        }
        default: {
          const model::VertexId u = ports[rng_() % ports.size()];
          const model::VertexId v = ports[rng_() % ports.size()];
          if (u == v) continue;
          return model::AddArcOp{
              "ce" + std::to_string(counter_++), shadow.port(u).name,
              shadow.port(v).name,
              1.0 + static_cast<double>(rng_() % 200) / 10.0};
        }
      }
    }
  }

  double jitter() { return (static_cast<double>(rng_() % 41) - 20.0) / 10.0; }

  std::mt19937 rng_;
  int counter_ = 0;
};

std::string plan_for_iteration(const Args& args, int i) {
  if (!args.fault_plan.empty()) return args.fault_plan;
  const auto& sites = support::all_fault_sites();
  const std::string site(sites[static_cast<std::size_t>(i) % sites.size()]);
  std::string rule;
  switch ((i / static_cast<int>(sites.size())) % 3) {
    case 0: rule = site + "@" + std::to_string(1 + i % 3); break;
    case 1: rule = site + "%" + std::to_string(1 + i % 2); break;
    default: rule = site + "~0.4"; break;
  }
  return rule + ";seed=" + std::to_string(args.seed + i);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) return usage(argv[0]);

  const model::ConstraintGraph base = workloads::wan2002();
  const commlib::Library lib = commlib::wan_library();
  std::vector<std::string> backends = ucp::registered_cover_solver_names();
  backends.push_back("portfolio");

  if (!args.postmortem_dir.empty()) {
    support::set_postmortem_dir(args.postmortem_dir);
  }

  int failures = 0;
  int successes = 0;
  for (int i = 0; i < args.iterations; ++i) {
    // One postmortem per iteration at most: each iteration is its own
    // experiment, and the monotonic dump sequence keeps filenames distinct.
    support::reset_postmortem_latch();
    const std::string spec = plan_for_iteration(args, i);
    const std::string journal =
        args.journal_dir + "/chaos_" + std::to_string(i) + ".journal";
    const auto fail = [&](const std::string& what) {
      std::cerr << "INVARIANT VIOLATION at iteration " << i << " (plan '"
                << spec << "', journal '" << journal << "'): " << what
                << "\n";
      return 1;
    };

    const auto plan = FaultPlan::parse(spec);
    if (!plan.ok()) {
      std::cerr << "bad fault plan '" << spec
                << "': " << plan.status().to_string() << "\n";
      return 2;
    }
    synth::SynthesisOptions options;
    options.threads = args.threads;
    options.fault_injection.injector = std::make_shared<FaultInjector>(*plan);
    // Rotate the cover solves across EVERY registered backend plus the
    // portfolio, so the rotating plans exercise the ucp.frontier fault site
    // in each engine (serial per branch node, dense DP per deadline poll,
    // hitting-set per iteration, parallel per round; the portfolio runs
    // sequentially under an armed injector). The dense-DP shortcut stays
    // off for the auto-dispatch-equivalent backends so branch-and-bound
    // actually runs on WAN's 19 rows; mode kRounds keeps parallel_bnb on
    // its deterministic engine.
    options.solver.backend = backends[static_cast<std::size_t>(i) %
                                      backends.size()];
    options.solver.mode = ucp::BnbMode::kRounds;
    options.solver.threads = args.threads;
    options.solver.dense_dp_max_rows = 0;

    synth::Engine engine(base, lib, options);
    // open_journal consults the io.journal.open fault site, so it may be
    // the injected failure itself; the session is still sound un-journaled.
    const bool journaled = engine.open_journal(journal).ok();

    ChaosGen gen(args.seed + static_cast<std::uint32_t>(i));
    model::ConstraintGraph shadow = engine.graph();
    for (int b = 0; b < 3; ++b) {
      const model::Delta batch = gen.next_batch(shadow);
      const std::string before = graph_bytes(engine.graph());
      const auto result = engine.apply(batch);
      if (result.ok()) {
        ++successes;
        if (!(result->total_cost > 0.0)) {
          return fail("apply succeeded with non-positive total cost");
        }
      } else {
        ++failures;
        if (graph_bytes(engine.graph()) != before) {
          return fail("failed apply mutated the session graph: " +
                      result.status().to_string());
        }
        shadow = engine.graph();  // the batch was NOT applied
      }
      if (journaled && engine.journaling()) {
        const auto contents = io::read_journal(journal);
        if (!contents.ok()) {
          return fail("journal unreadable mid-session: " +
                      contents.status().to_string());
        }
        model::ConstraintGraph replayed = contents->base;
        for (const model::Delta& d : contents->deltas) {
          if (!model::apply_delta(replayed, d).ok()) {
            return fail("journaled delta does not replay");
          }
        }
        if (graph_bytes(replayed) != graph_bytes(engine.graph())) {
          return fail("journal replay diverges from the live session");
        }
      }
    }

    if (journaled && engine.journaling()) {
      auto recovered = synth::Engine::recover(journal, lib);
      if (!recovered.ok()) {
        return fail("recover failed: " + recovered.status().to_string());
      }
      if (graph_bytes((*recovered)->graph()) != graph_bytes(engine.graph())) {
        return fail("recovered graph diverges from the live session");
      }
    }
    std::remove(journal.c_str());  // keep journals only from failed runs
  }

  std::cout << "chaos_driver: " << args.iterations << " iteration(s), "
            << successes << " applies ok, " << failures
            << " injected failure(s) rolled back cleanly, "
            << support::MetricsRegistry::global()
                   .counter("fault.fires")
                   .value()
            << " fault fire(s), "
            << support::MetricsRegistry::global()
                   .counter("postmortem.dumps")
                   .value()
            << " postmortem(s)\n";
  return 0;
}
