#!/usr/bin/env python3
"""Gate CI on the UCP-solver numbers in bench_perf_summary's JSON output.

Usage: check_bench_regression.py FRESH_JSON BASELINE_JSON

Compares a freshly-emitted BENCH_pr.json against the checked-in baseline
and fails (exit 1) on:
  * any cover-cost difference on the ucp_bnb corpus (the solver is exact:
    costs are machine-independent and must match to 1e-6);
  * any node-count increase on any instance (node counts are deterministic;
    growth means the bounds or reductions got weaker);
  * a wall-clock regression beyond 20%, measured machine-independently as
    the v2/legacy wall RATIO per instance (both sides of the ratio come
    from the same run on the same machine, so CI hardware drops out);
  * a WAN end-to-end total-cost change (determinism canary);
  * drift in the registry-derived "metrics" totals: the event counts
    (synthesize runs, UCP solves, subsets examined, engine applies) are
    exact-match canaries for the fixed bench workload, total UCP nodes
    must never grow, and the whole-run pricing-cache hit rate must not
    drop;
  * drift in the "profile" section's per-(scope, span-name) event COUNTS:
    the section is built from one scoped serial synthesize, so the set of
    (scope, name) rows and each row's count are machine-independent; the
    *_us timings and latency buckets are machine noise and are ignored;
  * drift in the "partitioned_scaling" section: the 1k-arc geo-WAN
    generator fingerprint, cluster/boundary shape, and stitched cost are
    machine-independent and must match exactly; the optimality gap must
    stay within the 10% acceptance bound; thread-count determinism and
    the exact-path timeout-or-10x flags must hold (both also enforced
    inside bench_perf_summary itself);
  * a WAN thread-sweep slowdown -- the best multi-threaded wall must not
    lose to the serial wall by more than 10% -- asserted ONLY when the
    fresh run's host has more than one hardware thread (on the 1-core CI
    container the sweep is pure oversubscription and proves nothing);
  * drift in the "cover_solver_matrix" section: every backend's cover cost
    (1e-6) and proven optimality per instance, no per-backend node-count
    growth, and the portfolio winner -- which the fixed-priority race makes
    a pure function of the instance -- must match the baseline exactly,
    with its deterministic flag true on every run;
  * drift in the "parallel_bnb" section: rounds-mode cost (1e-6) and
    explored-node count (no growth) against the baseline, plus the
    rounds_threads_identical / free_optimal / free_speedup_ok flags,
    which must hold on every run (speedup enforcement is tiered inside
    bench_perf_summary by the host's hardware_threads).

Absolute wall-clock milliseconds are intentionally NOT compared: the
baseline was recorded on a different machine than CI runs on.
"""
import json
import sys


def fail(msgs):
    for m in msgs:
        print(f"REGRESSION: {m}", file=sys.stderr)
    sys.exit(1)


def wall_ratio(entry):
    """v2 wall over legacy wall; None when the instance is too fast to time
    reliably (sub-millisecond legacy solves are all noise)."""
    legacy = entry.get("legacy_wall_ms", 0.0)
    if legacy < 1.0:
        return None
    return entry["wall_ms"] / legacy


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        fresh = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    errors = []

    fresh_ucp = {(e["rows"], e["cols"]): e for e in fresh["ucp_bnb"]}
    base_ucp = {(e["rows"], e["cols"]): e for e in base["ucp_bnb"]}
    for key, b in base_ucp.items():
        e = fresh_ucp.get(key)
        if e is None:
            errors.append(f"ucp_bnb instance {key} missing from fresh run")
            continue
        if "cost" in b and abs(e["cost"] - b["cost"]) > 1e-6:
            errors.append(
                f"{key}: cover cost changed {b['cost']} -> {e['cost']} "
                "(exact solver must be cost-stable)"
            )
        if e["nodes_explored"] > b["nodes_explored"]:
            errors.append(
                f"{key}: nodes_explored grew "
                f"{b['nodes_explored']} -> {e['nodes_explored']}"
            )
        if not e.get("optimal", False):
            errors.append(f"{key}: solver no longer proves optimality")
        b_ratio = wall_ratio(b) if "legacy_wall_ms" in b else None
        e_ratio = wall_ratio(e)
        if b_ratio is not None and e_ratio is not None \
                and e_ratio > b_ratio * 1.2:
            errors.append(
                f"{key}: v2/legacy wall ratio regressed "
                f"{b_ratio:.4f} -> {e_ratio:.4f} (>20%)"
            )

    fresh_cost = fresh["wan_synthesis"]["total_cost"]
    base_cost = base["wan_synthesis"]["total_cost"]
    if abs(fresh_cost - base_cost) > 1e-6:
        errors.append(
            f"WAN synthesis total_cost changed {base_cost} -> {fresh_cost}"
        )

    # WAN thread-sweep scaling: only meaningful with real cores. On a
    # 1-core host (the CI container) every thread count is time-sliced
    # onto the same core and the comparison is noise, so it is skipped --
    # not faked.
    fresh_hw = fresh["wan_synthesis"].get(
        "hardware_threads", fresh.get("host", {}).get("hardware_threads", 0))
    sweep = fresh["wan_synthesis"].get("wall_ms_best_of_5", {})
    if fresh_hw > 1 and "threads_1" in sweep:
        t1 = sweep["threads_1"]
        multi = [v for k, v in sweep.items()
                 if k.startswith("threads_") and k != "threads_1"
                 and not k.endswith("_warm_cache")]
        if multi and min(multi) > t1 * 1.10:
            errors.append(
                f"WAN thread sweep does not scale on a {fresh_hw}-thread "
                f"host: best multi-threaded wall {min(multi):.3f}ms vs "
                f"serial {t1:.3f}ms (>10% slower)"
            )

    # Incremental edit replay: the speedup is a same-machine ratio like
    # the v2/legacy wall ratio, so it transfers across CI hardware. The
    # hard >= 5x floor is enforced inside bench_perf_summary itself; here
    # we additionally catch drift against the checked-in baseline.
    b_inc = base.get("incremental_replay")
    e_inc = fresh.get("incremental_replay")
    if b_inc is not None:
        if e_inc is None:
            errors.append("incremental_replay section missing from fresh run")
        else:
            if e_inc["speedup"] < 5.0:
                errors.append(
                    f"incremental replay speedup {e_inc['speedup']:.2f}x "
                    "below the 5x acceptance floor"
                )
            if e_inc["speedup"] < b_inc["speedup"] * 0.8:
                errors.append(
                    "incremental replay speedup regressed "
                    f"{b_inc['speedup']:.2f}x -> {e_inc['speedup']:.2f}x "
                    "(>20%)"
                )
            if e_inc["pricing_hit_rate"] < b_inc["pricing_hit_rate"] - 1e-9:
                errors.append(
                    "incremental pricing hit rate dropped "
                    f"{b_inc['pricing_hit_rate']} -> "
                    f"{e_inc['pricing_hit_rate']}"
                )

    # Registry-derived totals (the "metrics" section comes straight from the
    # support::MetricsRegistry delta across the bench run). All machine-
    # independent: event counts, not durations.
    b_m = base.get("metrics")
    e_m = fresh.get("metrics")
    if b_m is not None:
        if e_m is None:
            errors.append("metrics section missing from fresh run")
        else:
            for key in ("synth_runs", "ucp_solves", "subsets_examined",
                        "engine_applies"):
                if key in b_m and e_m.get(key) != b_m[key]:
                    errors.append(
                        f"metrics.{key} changed {b_m[key]} -> "
                        f"{e_m.get(key)} (fixed workload: counts are exact)"
                    )
            if e_m.get("ucp_nodes_total", 0) > b_m.get("ucp_nodes_total", 0):
                errors.append(
                    "metrics.ucp_nodes_total grew "
                    f"{b_m['ucp_nodes_total']} -> {e_m['ucp_nodes_total']} "
                    "(search got weaker)"
                )
            if e_m.get("cache_hit_rate", 0.0) \
                    < b_m.get("cache_hit_rate", 0.0) - 1e-9:
                errors.append(
                    "metrics.cache_hit_rate dropped "
                    f"{b_m['cache_hit_rate']} -> {e_m['cache_hit_rate']}"
                )
            # Robustness guards: the bench harness must run with fault
            # injection unarmed and journaling off, so both totals are
            # pinned at exactly zero (when the bench emits them at all).
            for key in ("fault_fires", "journal_appends"):
                if e_m.get(key, 0) != 0:
                    errors.append(
                        f"metrics.{key} = {e_m[key]} in the bench run "
                        "(fault injection / journaling must be off)"
                    )

    # In-process profiler over one scoped serial synthesize. Only the
    # (scope, name) -> count mapping is compared: span counts are exact for
    # the fixed serial workload, while every *_us field and the latency
    # buckets depend on machine speed and are ignored.
    b_prof = base.get("profile")
    e_prof = fresh.get("profile")
    if b_prof is not None:
        if e_prof is None:
            errors.append("profile section missing from fresh run")
        else:
            b_counts = {(e["scope"], e["name"]): e["count"]
                        for e in b_prof.get("entries", [])}
            e_counts = {(e["scope"], e["name"]): e["count"]
                        for e in e_prof.get("entries", [])}
            for key, count in sorted(b_counts.items()):
                if key not in e_counts:
                    errors.append(
                        f"profile row {key} missing from fresh run "
                        "(instrumentation site disappeared)"
                    )
                elif e_counts[key] != count:
                    errors.append(
                        f"profile row {key} count changed {count} -> "
                        f"{e_counts[key]} (fixed serial workload: span "
                        "counts are exact)"
                    )
            for key in sorted(set(e_counts) - set(b_counts)):
                errors.append(
                    f"profile row {key} appeared in the fresh run only "
                    "(new instrumentation site: refresh the baseline)"
                )

    # Partitioned-synthesis scaling gate. Costs here are stitched sums of
    # exact per-cluster covers on a fingerprint-pinned generator output, so
    # like the WAN canary they are machine-independent (compared with a
    # relative tolerance: the absolute magnitude is ~1e8). Wall-clock
    # fields (partitioned_wall_ms, exact_wall_ms) are intentionally NOT
    # compared; the machine-independent speedup evidence is the
    # exact_timeout_or_10x flag.
    b_p = base.get("partitioned_scaling")
    e_p = fresh.get("partitioned_scaling")
    if b_p is not None:
        if e_p is None:
            errors.append("partitioned_scaling section missing from fresh run")
        else:
            for key in ("workload", "arcs", "seed", "fingerprint",
                        "clusters", "interior_clusters", "boundary_arcs"):
                if key in b_p and e_p.get(key) != b_p[key]:
                    errors.append(
                        f"partitioned_scaling.{key} changed {b_p[key]} -> "
                        f"{e_p.get(key)} (generator and partitioner are "
                        "deterministic)"
                    )
            if abs(e_p["cost"] - b_p["cost"]) > 1e-9 * abs(b_p["cost"]):
                errors.append(
                    f"partitioned_scaling.cost changed {b_p['cost']} -> "
                    f"{e_p['cost']} (stitched cover must be cost-stable)"
                )
            if abs(e_p["lower_bound"] - b_p["lower_bound"]) \
                    > 1e-9 * abs(b_p["lower_bound"]):
                errors.append(
                    "partitioned_scaling.lower_bound changed "
                    f"{b_p['lower_bound']} -> {e_p['lower_bound']}"
                )
            if e_p.get("optimality_gap", 1.0) > 0.10:
                errors.append(
                    f"partitioned_scaling.optimality_gap "
                    f"{e_p.get('optimality_gap')} exceeds the 10% "
                    "acceptance bound"
                )
            for key in ("threads_identical", "exact_timeout_or_10x"):
                if e_p.get(key) is not True:
                    errors.append(
                        f"partitioned_scaling.{key} = {e_p.get(key)} "
                        "(must hold on every run)"
                    )

    # Cover-solver backend matrix. Everything in the section is a
    # deterministic pure function of the pinned instances: per-backend node
    # counts (exact solvers, fixed seeds), costs, and the portfolio winner
    # (the fixed-priority race contract in ucp/cover_solver.hpp). Costs get
    # the usual float tolerance; node counts must not grow; the winner must
    # not drift.
    b_matrix = {(e["rows"], e["cols"]): e
                for e in base.get("cover_solver_matrix", [])}
    e_matrix = {(e["rows"], e["cols"]): e
                for e in fresh.get("cover_solver_matrix", [])}
    for key, b in b_matrix.items():
        e = e_matrix.get(key)
        if e is None:
            errors.append(
                f"cover_solver_matrix instance {key} missing from fresh run")
            continue
        if abs(e["cost"] - b["cost"]) > 1e-6:
            errors.append(
                f"cover_solver_matrix {key}: reference cost changed "
                f"{b['cost']} -> {e['cost']}"
            )
        for name, bb in b.get("backends", {}).items():
            eb = e.get("backends", {}).get(name)
            if eb is None:
                errors.append(
                    f"cover_solver_matrix {key}: backend '{name}' missing "
                    "from fresh run"
                )
                continue
            if not eb.get("optimal", False):
                errors.append(
                    f"cover_solver_matrix {key}: backend '{name}' no longer "
                    "proves optimality"
                )
            if eb["nodes"] > bb["nodes"]:
                errors.append(
                    f"cover_solver_matrix {key}: backend '{name}' nodes grew "
                    f"{bb['nodes']} -> {eb['nodes']}"
                )
        b_pf = b.get("portfolio", {})
        e_pf = e.get("portfolio", {})
        if e_pf.get("winner") != b_pf.get("winner"):
            errors.append(
                f"cover_solver_matrix {key}: portfolio winner changed "
                f"'{b_pf.get('winner')}' -> '{e_pf.get('winner')}' (the "
                "fixed-priority winner is a pure function of the instance)"
            )
        if abs(e_pf.get("cost", 0.0) - b_pf.get("cost", 0.0)) > 1e-6:
            errors.append(
                f"cover_solver_matrix {key}: portfolio cost changed "
                f"{b_pf.get('cost')} -> {e_pf.get('cost')}"
            )
        if e_pf.get("deterministic") is not True:
            errors.append(
                f"cover_solver_matrix {key}: portfolio deterministic = "
                f"{e_pf.get('deterministic')} (must hold on every run)"
            )

    # Parallel branch-and-bound. The rounds-mode tree is a pure function of
    # the instance (that is the determinism contract), so its cost and node
    # count transfer across machines like the ucp_bnb corpus numbers.
    # Free-run wall times and the speedup value are machine-dependent and
    # are NOT compared; the machine-independent evidence is the flag
    # triple, which bench_perf_summary computes with host-tiered
    # enforcement (free_speedup_ok is trivially true on a 1-core host).
    b_pb = base.get("parallel_bnb")
    e_pb = fresh.get("parallel_bnb")
    if b_pb is not None:
        if e_pb is None:
            errors.append("parallel_bnb section missing from fresh run")
        else:
            if abs(e_pb["rounds_cost"] - b_pb["rounds_cost"]) > 1e-6:
                errors.append(
                    f"parallel_bnb.rounds_cost changed {b_pb['rounds_cost']} "
                    f"-> {e_pb['rounds_cost']} (exact solver must be "
                    "cost-stable)"
                )
            if e_pb["rounds_nodes"] > b_pb["rounds_nodes"]:
                errors.append(
                    "parallel_bnb.rounds_nodes grew "
                    f"{b_pb['rounds_nodes']} -> {e_pb['rounds_nodes']} "
                    "(bounds got weaker)"
                )
            for key in ("rounds_threads_identical", "free_optimal",
                        "free_speedup_ok"):
                if e_pb.get(key) is not True:
                    errors.append(
                        f"parallel_bnb.{key} = {e_pb.get(key)} "
                        "(must hold on every run)"
                    )

    if errors:
        fail(errors)
    print("bench regression check: OK "
          f"({len(base_ucp)} ucp instances, WAN cost {fresh_cost:.3f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
