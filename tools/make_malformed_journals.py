#!/usr/bin/env python3
"""Regenerates the malformed-journal corpus under data/edits/.

The journal format (docs/robustness.md, src/io/journal.cpp):

    "CDCSWAL1" magic, then records of [u32 LE length][u32 LE crc32][payload].

CRC-32 is the reflected 0xEDB88320 polynomial -- exactly binascii.crc32 --
so this script can forge records byte-for-byte. Each corpus file is a
journal that a crash (or bit rot) could plausibly produce; the expected
reader behavior is pinned in tests/test_journal.cpp (JournalCorpus.*).
"""

import binascii
import pathlib
import struct

MAGIC = b"CDCSWAL1"

BASE_GRAPH = b"""# Tiny corpus graph: 3 ports, 2 channels.
norm euclidean
port A 0 0
port B 3 4
port C 6 0
channel c1 A B 10
channel c2 B C 12
"""

DELTA_1 = b"set-bandwidth c1 12\nsolve\n"
DELTA_2 = b"move-port B 3.5 4.5\nsolve\n"
DELTA_3 = b"set-bandwidth c2 14\nsolve\n"


def record(payload: bytes, crc: int | None = None) -> bytes:
    if crc is None:
        crc = binascii.crc32(payload) & 0xFFFFFFFF
    return struct.pack("<II", len(payload), crc) + payload


def snapshot() -> bytes:
    return record(b"graph\n" + BASE_GRAPH)


def delta(body: bytes) -> bytes:
    return record(b"delta\n" + body)


def main() -> None:
    out_dir = pathlib.Path(__file__).resolve().parent.parent / "data" / "edits"

    # A checksum mismatch after one good delta: the reader keeps the
    # 2-record prefix and drops the bad record as a torn tail.
    bad_crc = delta(DELTA_2)
    bad_crc = bad_crc[:4] + struct.pack(
        "<I", struct.unpack("<I", bad_crc[4:8])[0] ^ 1) + bad_crc[8:]
    (out_dir / "malformed_bad_crc.journal").write_bytes(
        MAGIC + snapshot() + delta(DELTA_1) + bad_crc)

    # A crash mid-header: 5 of the 8 header bytes landed.
    (out_dir / "malformed_truncated_length.journal").write_bytes(
        MAGIC + snapshot() + delta(DELTA_1) + record(b"delta\n" + DELTA_2)[:5])

    # A crash mid-payload: the third delta record is half-written.
    torn = delta(DELTA_3)
    (out_dir / "malformed_torn_tail.journal").write_bytes(
        MAGIC + snapshot() + delta(DELTA_1) + delta(DELTA_2)
        + torn[: len(torn) // 2])

    # Not a journal at all.
    (out_dir / "malformed_bad_magic.journal").write_bytes(
        b"NOTAWAL0" + snapshot())

    for name in sorted(p.name for p in out_dir.glob("malformed_*.journal")):
        print(f"wrote {name}")


if __name__ == "__main__":
    main()
